#include "exs/trace.hpp"

#include <sstream>

#include "exs/types.hpp"

namespace exs {

const char* ToString(TraceEventType type) {
  switch (type) {
    case TraceEventType::kAdvertReceived: return "advert-received";
    case TraceEventType::kAdvertAccepted: return "advert-accepted";
    case TraceEventType::kAdvertDiscarded: return "advert-discarded";
    case TraceEventType::kDirectPosted: return "direct-posted";
    case TraceEventType::kIndirectPosted: return "indirect-posted";
    case TraceEventType::kSenderPhaseChanged: return "sender-phase";
    case TraceEventType::kAckReceived: return "ack-received";
    case TraceEventType::kAdvertSent: return "advert-sent";
    case TraceEventType::kDirectArrived: return "direct-arrived";
    case TraceEventType::kIndirectArrived: return "indirect-arrived";
    case TraceEventType::kCopyOut: return "copy-out";
    case TraceEventType::kAckSent: return "ack-sent";
    case TraceEventType::kReceiverPhaseChanged: return "receiver-phase";
    case TraceEventType::kSendStaged: return "send-staged";
    case TraceEventType::kCoalesceFlushed: return "coalesce-flushed";
    case TraceEventType::kAckPiggybacked: return "ack-piggybacked";
    case TraceEventType::kZeroLengthSend: return "zero-length-send";
    case TraceEventType::kTransportKilled: return "transport-killed";
    case TraceEventType::kResumeTx: return "resume-tx";
    case TraceEventType::kResumeRx: return "resume-rx";
  }
  return "?";
}

const char* ToString(CoalesceFlushReason reason) {
  switch (reason) {
    case CoalesceFlushReason::kMaxBytes: return "max-bytes";
    case CoalesceFlushReason::kTimeout: return "timeout";
    case CoalesceFlushReason::kAdvert: return "advert";
    case CoalesceFlushReason::kPhaseChange: return "phase-change";
    case CoalesceFlushReason::kClose: return "close";
    case CoalesceFlushReason::kOrdering: return "ordering";
  }
  return "?";
}

std::string TraceLog::Format() const {
  std::ostringstream oss;
  for (const auto& ev : events_) {
    oss << ToMicroseconds(ev.time) << "us " << ToString(ev.type)
        << " seq=" << ev.seq << " phase=" << ev.phase;
    if (ev.len) oss << " len=" << ev.len;
    switch (ev.type) {
      case TraceEventType::kAdvertSent:
      case TraceEventType::kAdvertReceived:
      case TraceEventType::kAdvertAccepted:
      case TraceEventType::kAdvertDiscarded:
        oss << " advert(seq=" << ev.msg_seq << " phase=" << ev.msg_phase
            << ")";
        break;
      default:
        break;
    }
    oss << "\n";
  }
  return oss.str();
}

std::string TraceCheckResult::Summary() const {
  if (violations.empty()) return "all lemma checks passed";
  std::ostringstream oss;
  oss << violations.size() << " violation(s):";
  for (const auto& v : violations) oss << "\n  " << v;
  return oss.str();
}

namespace {

void Violation(TraceCheckResult& result, const TraceEvent& ev,
               const std::string& what) {
  std::ostringstream oss;
  oss << "t=" << ToMicroseconds(ev.time) << "us " << ToString(ev.type)
      << ": " << what;
  result.violations.push_back(oss.str());
}

}  // namespace

TraceCheckResult ValidateSenderTrace(const std::vector<TraceEvent>& events) {
  TraceCheckResult result;
  std::uint64_t last_phase = 0;
  std::uint64_t last_seq = 0;
  bool sent_anything = false;
  bool last_transfer_indirect = false;

  for (const auto& ev : events) {
    if (ev.type == TraceEventType::kResumeTx) {
      // Resume marker: the sender legitimately rewound its sequence to the
      // receiver's delivered frontier to retransmit the lost suffix.  The
      // monotonicity baseline restarts here; phase never rewinds, so the
      // phase baseline carries forward unchanged.
      if (ev.phase < last_phase) {
        Violation(result, ev, "sender phase went backwards at resume");
      }
      last_phase = ev.phase;
      last_seq = ev.seq;
      last_transfer_indirect = false;
      continue;
    }
    // Phase and sequence monotonicity — the foundation of every proof.
    if (ev.phase < last_phase) {
      Violation(result, ev, "sender phase went backwards");
    }
    if (ev.seq < last_seq) {
      Violation(result, ev, "sender sequence went backwards");
    }
    last_phase = ev.phase;
    last_seq = ev.seq;

    switch (ev.type) {
      case TraceEventType::kAdvertReceived:
      case TraceEventType::kAdvertAccepted:
      case TraceEventType::kAdvertDiscarded:
        // Lemma 1, observed at the sender: ADVERTs always carry a direct
        // phase number.
        if (!PhaseIsDirect(ev.msg_phase)) {
          Violation(result, ev, "Lemma 1: ADVERT with indirect phase");
        }
        if (ev.type == TraceEventType::kAdvertAccepted) {
          // Lemma 4 / Theorem 1 acceptance conditions: an ADVERT matched
          // while the sender was in a direct phase carries exactly that
          // phase; one that ends an indirect phase carries the exact
          // sequence number.  (Acceptance events record the sender state
          // *before* the phase is advanced.)
          if (PhaseIsDirect(ev.phase) && ev.msg_phase != ev.phase) {
            Violation(result, ev,
                      "Lemma 4: accepted ADVERT phase differs from direct "
                      "sender phase");
          }
          if (PhaseIsIndirect(ev.phase) && ev.msg_seq != ev.seq) {
            Violation(result, ev,
                      "Theorem 1: ADVERT ending an indirect phase must "
                      "carry the exact sequence number");
          }
          // The next transfer of the new direct phase posts immediately;
          // Lemma 3's "most recent transfer" bookkeeping rolls forward.
          last_transfer_indirect = false;
        }
        break;
      case TraceEventType::kDirectPosted:
        // Lemma 3's contrapositive direction: a direct transfer may only
        // be posted in a direct phase.
        if (!PhaseIsDirect(ev.phase)) {
          Violation(result, ev, "direct transfer posted in indirect phase");
        }
        sent_anything = true;
        last_transfer_indirect = false;
        break;
      case TraceEventType::kIndirectPosted:
        if (!PhaseIsIndirect(ev.phase)) {
          Violation(result, ev,
                    "indirect transfer posted in direct phase");
        }
        sent_anything = true;
        last_transfer_indirect = true;
        break;
      case TraceEventType::kSenderPhaseChanged:
        // Lemma 3: if the new phase is direct, the most recent transfer
        // (if any) was... the lemma as stated concerns steady state; at
        // the moment of a phase change *to* direct no transfer of the new
        // phase exists yet, so the meaningful check is the dual: a change
        // to an indirect phase happens exactly when an indirect transfer
        // is about to be posted, checked via the posting events above.
        break;
      default:
        break;
    }

    // Lemma 3, checked continuously: whenever the sender's phase is
    // direct and it has sent something, the most recent transfer must be
    // direct.
    if (PhaseIsDirect(ev.phase) && sent_anything && last_transfer_indirect) {
      Violation(result, ev,
                "Lemma 3: direct phase but most recent transfer indirect");
    }
  }
  return result;
}

TraceCheckResult ValidateReceiverTrace(
    const std::vector<TraceEvent>& events) {
  TraceCheckResult result;
  std::uint64_t last_phase = 0;
  std::uint64_t last_seq = 0;
  bool advert_seen_since_indirect = false;
  std::uint64_t advert_phase_since_indirect = 0;
  std::uint64_t last_advert_seq = 0;
  bool have_last_advert_seq = false;

  for (const auto& ev : events) {
    if (ev.type == TraceEventType::kResumeRx) {
      // Resume marker: post-resume ADVERTs restart at the delivered
      // frontier, which is at or below the receiver's pre-kill estimate
      // (S'_r collapses back to S_r), so the ADVERT-sequence baseline and
      // Lemma 2's between-indirect-arrivals window restart here.  The
      // delivered sequence itself (S_r) never rewinds — that check runs
      // straight through the marker.
      if (ev.phase < last_phase) {
        Violation(result, ev, "receiver phase went backwards at resume");
      }
      if (ev.seq < last_seq) {
        Violation(result, ev, "receiver sequence went backwards at resume");
      }
      last_phase = ev.phase;
      last_seq = ev.seq;
      have_last_advert_seq = false;
      advert_seen_since_indirect = false;
      continue;
    }
    if (ev.phase < last_phase) {
      Violation(result, ev, "receiver phase went backwards");
    }
    if (ev.seq < last_seq) {
      Violation(result, ev, "receiver sequence went backwards");
    }
    last_phase = ev.phase;
    last_seq = ev.seq;

    switch (ev.type) {
      case TraceEventType::kAdvertSent:
        // Lemma 1 at the source.
        if (!PhaseIsDirect(ev.msg_phase)) {
          Violation(result, ev, "Lemma 1: ADVERT sent with indirect phase");
        }
        if (ev.msg_phase != ev.phase) {
          Violation(result, ev,
                    "ADVERT phase differs from receiver phase at send");
        }
        // Lemma 2: all ADVERTs between two indirect arrivals carry the
        // same phase number.
        if (advert_seen_since_indirect &&
            ev.msg_phase != advert_phase_since_indirect) {
          Violation(result, ev,
                    "Lemma 2: ADVERT phase changed without an intervening "
                    "indirect transfer");
        }
        advert_seen_since_indirect = true;
        advert_phase_since_indirect = ev.msg_phase;
        // Proof of Theorem 1 (b3/b4): sequence numbers within a sequence
        // of ADVERTs are monotonically increasing.
        if (have_last_advert_seq && ev.msg_seq <= last_advert_seq) {
          Violation(result, ev,
                    "ADVERT sequence numbers not strictly increasing");
        }
        last_advert_seq = ev.msg_seq;
        have_last_advert_seq = true;
        break;
      case TraceEventType::kIndirectArrived:
        if (!PhaseIsIndirect(ev.phase)) {
          Violation(result, ev,
                    "indirect arrival left receiver in a direct phase");
        }
        advert_seen_since_indirect = false;
        break;
      case TraceEventType::kDirectArrived:
        // The safety property's observable: direct data is only accepted
        // in a direct phase (the in-buffer check lives in StreamRx).
        if (!PhaseIsDirect(ev.phase)) {
          Violation(result, ev, "direct arrival in an indirect phase");
        }
        break;
      default:
        break;
    }
  }
  return result;
}

TraceCheckResult ValidateConnectionTraces(
    const std::vector<TraceEvent>& sender_events,
    const std::vector<TraceEvent>& receiver_events) {
  TraceCheckResult result = ValidateSenderTrace(sender_events);
  TraceCheckResult rx = ValidateReceiverTrace(receiver_events);
  result.violations.insert(result.violations.end(), rx.violations.begin(),
                           rx.violations.end());

  // Conservation: bytes posted by kind equal bytes arriving by kind.  A
  // run with a transport kill breaks this per-kind identity legitimately —
  // chunks in flight at the kill were posted but never arrive, and their
  // retransmission may ride the other kind — so the cross-check is skipped;
  // the receiver's unbroken sequence continuity (checked above and in the
  // invariant checker) is what guarantees the delivered stream is gap-free
  // and duplicate-free.
  for (const auto& ev : sender_events) {
    if (ev.type == TraceEventType::kResumeTx ||
        ev.type == TraceEventType::kTransportKilled) {
      return result;
    }
  }
  for (const auto& ev : receiver_events) {
    if (ev.type == TraceEventType::kResumeRx ||
        ev.type == TraceEventType::kTransportKilled) {
      return result;
    }
  }
  std::uint64_t direct_posted = 0, indirect_posted = 0;
  for (const auto& ev : sender_events) {
    if (ev.type == TraceEventType::kDirectPosted) direct_posted += ev.len;
    if (ev.type == TraceEventType::kIndirectPosted) indirect_posted += ev.len;
  }
  std::uint64_t direct_arrived = 0, indirect_arrived = 0;
  for (const auto& ev : receiver_events) {
    if (ev.type == TraceEventType::kDirectArrived) direct_arrived += ev.len;
    if (ev.type == TraceEventType::kIndirectArrived)
      indirect_arrived += ev.len;
  }
  if (direct_posted != direct_arrived) {
    result.violations.push_back("direct byte conservation failed: posted " +
                                std::to_string(direct_posted) +
                                ", arrived " +
                                std::to_string(direct_arrived));
  }
  if (indirect_posted != indirect_arrived) {
    result.violations.push_back(
        "indirect byte conservation failed: posted " +
        std::to_string(indirect_posted) + ", arrived " +
        std::to_string(indirect_arrived));
  }
  return result;
}

}  // namespace exs
