#include "exs/engine/acceptor.hpp"

#include "common/check.hpp"
#include "common/logging.hpp"

namespace exs::engine {

Acceptor::Acceptor(verbs::Device& device, ProgressEngine& engine,
                   AcceptorOptions options, metrics::Registry* registry)
    : device_(&device),
      engine_(&engine),
      pool_(device, options.pool, registry),
      slots_(device, options.control_slots, registry) {
  if (registry != nullptr) {
    refusals_counter_ =
        &registry->GetCounter("pool.admission_refusals", "connections");
  }
}

std::unique_ptr<Socket> Acceptor::Admit(verbs::Device& device,
                                        SocketType type,
                                        const StreamOptions& options,
                                        const std::string& name) {
  // Admission control: every resource the socket will draw from the shared
  // pools must be available *now* — an accept must never be able to starve
  // an established connection.
  if (!pool_.AdmissionOpen() || !slots_.CanReserve(options.credits)) {
    ++admission_refusals_;
    if (refusals_counter_ != nullptr) refusals_counter_->Increment();
    return nullptr;
  }
  RingLease lease = pool_.Acquire();
  EXS_CHECK_MSG(lease.valid(), "AdmissionOpen pool failed to lease");
  SocketWiring wiring;
  wiring.ring_lease = std::move(lease);
  wiring.shared_slots = &slots_;
  return std::make_unique<Socket>(device, type, options, name,
                                  std::move(wiring));
}

Listener* Acceptor::Listen(ConnectionService& connections, std::uint16_t port,
                           StreamOptions options,
                           ProgressEngine::EventHandler handler,
                           AcceptCallback on_accept) {
  EXS_CHECK_MSG(options.rails == 1,
                "engine-managed sockets are single-rail (shared SRQ pool)");
  Listener* listener = connections.Listen(device_->node_index(), port,
                                          SocketType::kStream, options);
  listener->SetAcceptGate([this](verbs::Device& dev, SocketType type,
                                 const StreamOptions& opts,
                                 const std::string& name) {
    return Admit(dev, type, opts, name);
  });
  listener->SetAcceptHandler(
      [this, handler = std::move(handler),
       on_accept = std::move(on_accept)](Socket* socket) {
        engine_->Register(socket, handler);
        if (on_accept) on_accept(*socket);
      });
  return listener;
}

}  // namespace exs::engine
