#include "exs/engine/acceptor.hpp"

#include "common/check.hpp"
#include "common/logging.hpp"

namespace exs::engine {

Acceptor::Acceptor(verbs::Device& device, ProgressEngine& engine,
                   AcceptorOptions options, metrics::Registry* registry)
    : device_(&device),
      engine_(&engine),
      pool_(device, options.pool, registry),
      slots_(device, options.control_slots, registry) {
  if (options.mux.has_value()) {
    qp_pool_ = std::make_unique<QpPool>(device, *options.mux, registry);
  }
  if (registry != nullptr) {
    refusals_counter_ =
        &registry->GetCounter("pool.admission_refusals", "connections");
  }
}

void Acceptor::Refuse() {
  ++admission_refusals_;
  if (refusals_counter_ != nullptr) refusals_counter_->Increment();
}

std::unique_ptr<Socket> Acceptor::Admit(verbs::Device& device,
                                        SocketType type,
                                        const StreamOptions& options,
                                        const std::string& name,
                                        const AcceptMeta& meta) {
  // Admission control: every resource the socket will draw from the shared
  // pools is *committed* here, atomically with the check — an accept must
  // never be able to starve an established connection, and no later wiring
  // step (however deferred) can turn an admission refusal into a crash.
  if (!pool_.AdmissionOpen()) {
    Refuse();
    return nullptr;
  }
  std::unique_ptr<MuxStream> stream;
  if (meta.mux) {
    // Muxed sockets ride the shared-QP pool: no dedicated channel, so no
    // SRQ slot reservation — their receives are the slot QPs' pre-posted
    // pools, committed once at pool construction.  The ring lease is still
    // per-socket (the indirect path buffers per stream, not per QP).
    if (qp_pool_ == nullptr) {
      Refuse();
      return nullptr;
    }
    stream = qp_pool_->Admit(meta.mux_stream);
    if (stream == nullptr) {
      Refuse();
      return nullptr;
    }
  } else if (!slots_.ReserveSlots(options.credits)) {
    Refuse();
    return nullptr;
  }
  RingLease lease = pool_.Acquire();
  if (!lease.valid()) {  // unreachable after AdmissionOpen; refund anyway
    if (!meta.mux) slots_.UnreserveSlots(options.credits);
    Refuse();
    return nullptr;
  }
  SocketWiring wiring;
  wiring.ring_lease = std::move(lease);
  if (meta.mux) {
    wiring.mux_stream = std::move(stream);
  } else {
    wiring.shared_slots = &slots_;
    // The socket's channel adopts the reservation made above and refunds
    // it at teardown.
    wiring.slots_reserved = true;
  }
  return std::make_unique<Socket>(device, type, options, name,
                                  std::move(wiring));
}

Listener* Acceptor::Listen(ConnectionService& connections, std::uint16_t port,
                           StreamOptions options,
                           ProgressEngine::EventHandler handler,
                           AcceptCallback on_accept) {
  EXS_CHECK_MSG(options.rails == 1,
                "engine-managed sockets are single-rail (shared SRQ pool)");
  Listener* listener = connections.Listen(device_->node_index(), port,
                                          SocketType::kStream, options);
  listener->SetAcceptGate([this](verbs::Device& dev, SocketType type,
                                 const StreamOptions& opts,
                                 const std::string& name,
                                 const AcceptMeta& meta) {
    return Admit(dev, type, opts, name, meta);
  });
  listener->SetAcceptHandler(
      [this, handler = std::move(handler),
       on_accept = std::move(on_accept)](Socket* socket) {
        engine_->Register(socket, handler);
        if (on_accept) on_accept(*socket);
      });
  return listener;
}

}  // namespace exs::engine
