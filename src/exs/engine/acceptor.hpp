// The exs_listen/exs_accept-style server front end.
//
// Ties the engine's shared resources together: a listener whose accept
// gate performs admission control against the BufferPool (ring leases) and
// ControlSlotPool (SRQ credit reservations), constructing every accepted
// socket with SocketWiring that draws from both, and an accept handler
// that registers the new socket with the ProgressEngine.  A connection
// arriving under memory pressure is REJECTed during the handshake — the
// client sees a failed connect, never a stalled established stream.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include <memory>
#include <optional>

#include "common/metrics.hpp"
#include "exs/connection.hpp"
#include "exs/engine/buffer_pool.hpp"
#include "exs/engine/progress_engine.hpp"
#include "exs/engine/qp_pool.hpp"
#include "exs/engine/srq_pool.hpp"
#include "verbs/device.hpp"

namespace exs::engine {

struct AcceptorOptions {
  BufferPoolOptions pool;          ///< shared indirect-ring slab
  std::uint32_t control_slots = 0; ///< SRQ pool size (receives)
  /// When set, REQs asking for multiplexing are carried over this shared-QP
  /// pool instead of getting a dedicated transport; the pool's group must
  /// be wired to the client side before the first handshake.  Unset, muxed
  /// REQs are refused (same REJECT as memory pressure).
  std::optional<QpPoolOptions> mux;
};

class Acceptor {
 public:
  /// Invoked for every accepted socket, after engine registration; install
  /// receives / handlers here.
  using AcceptCallback = std::function<void(Socket&)>;

  Acceptor(verbs::Device& device, ProgressEngine& engine,
           AcceptorOptions options, metrics::Registry* registry = nullptr);

  Acceptor(const Acceptor&) = delete;
  Acceptor& operator=(const Acceptor&) = delete;

  /// Bind at (device's node, port) and start admitting connections.
  /// `handler` dispatches each accepted socket's events from the engine's
  /// tick loop; `on_accept` (optional) runs once per accepted socket.
  Listener* Listen(ConnectionService& connections, std::uint16_t port,
                   StreamOptions options, ProgressEngine::EventHandler handler,
                   AcceptCallback on_accept = nullptr);

  BufferPool& pool() { return pool_; }
  ControlSlotPool& control_slots() { return slots_; }
  /// The shared-QP pool, or null when AcceptorOptions::mux was unset.
  QpPool* qp_pool() { return qp_pool_.get(); }
  std::uint64_t AdmissionRefusals() const { return admission_refusals_; }

 private:
  std::unique_ptr<Socket> Admit(verbs::Device& device, SocketType type,
                                const StreamOptions& options,
                                const std::string& name,
                                const AcceptMeta& meta);
  void Refuse();

  verbs::Device* device_;
  ProgressEngine* engine_;
  BufferPool pool_;
  ControlSlotPool slots_;
  std::unique_ptr<QpPool> qp_pool_;
  std::uint64_t admission_refusals_ = 0;
  metrics::Counter* refusals_counter_ = nullptr;
};

}  // namespace exs::engine
