// Shared indirect buffer pool: one slab, many streams.
//
// The classic socket allocates (and registers) a private intermediate
// circular buffer per incoming stream, so receiver memory grows O(streams).
// At server scale that is the dominant cost — RDMAvisor measures receive
// buffering, not queue-pair state, as the first resource to exhaust.  The
// pool inverts the ownership: one registered slab, carved into fixed-size
// ring leases that accepted streams borrow for their lifetime and hand
// back once the stream has delivered EOF and drained.  Receiver memory is
// O(pool), the §II-C phase/ADVERT machinery is untouched (a leased ring is
// just a ring that happens to live in shared memory — direct transfers
// bypass it entirely), and admission control at the acceptor converts
// "pool exhausted" into a refused connection instead of a starved one.
//
// Watermark hysteresis: admission closes when leased bytes reach the high
// watermark and reopens only once reclaim has brought them back under the
// low watermark, so a server hovering at capacity flaps neither its
// accepts nor its pool.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/metrics.hpp"
#include "exs/stream.hpp"
#include "verbs/device.hpp"

namespace exs::engine {

struct BufferPoolOptions {
  std::uint64_t pool_bytes = 0;   ///< total slab size
  std::uint64_t lease_bytes = 0;  ///< per-stream ring carve (divides pool)
  double high_watermark = 0.9;    ///< close admission at/above this fill
  double low_watermark = 0.7;     ///< reopen admission at/below this fill
};

class BufferPool {
 public:
  /// `registry` (optional) receives the pool.* instruments.
  BufferPool(verbs::Device& device, BufferPoolOptions options,
             metrics::Registry* registry = nullptr);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Borrow one ring carve; invalid lease when the pool is exhausted.
  /// The lease may outlive the pool: its release closure carries the
  /// pool's liveness token and degrades to a no-op once the pool is gone.
  RingLease Acquire();

  /// Expires when this pool is destroyed (see ControlSlotSource's
  /// identically named token for the lifetime rule it encodes).
  std::weak_ptr<void> LivenessToken() const { return liveness_; }

  /// Would the acceptor admit a new stream right now?  False while the
  /// watermark hysteresis holds admission closed or no carve is free.
  bool AdmissionOpen() const;

  std::uint64_t pool_bytes() const { return options_.pool_bytes; }
  std::uint64_t lease_bytes() const { return options_.lease_bytes; }
  std::uint64_t BytesLeased() const { return bytes_leased_; }
  std::uint64_t PeakBytesLeased() const { return peak_bytes_leased_; }
  std::size_t LeasesActive() const { return total_leases_ - free_.size(); }
  std::uint64_t LeasesGranted() const { return leases_granted_; }
  std::uint64_t LeasesReclaimed() const { return leases_reclaimed_; }

 private:
  void Release(std::size_t index);
  void Sample();

  verbs::Device* device_;
  BufferPoolOptions options_;
  std::vector<std::uint8_t> slab_;
  verbs::MemoryRegionPtr mr_;  ///< one registration covers every lease
  std::size_t total_leases_ = 0;
  std::vector<std::size_t> free_;  ///< free carve indices (LIFO)
  std::vector<bool> leased_;       ///< double-release guard
  std::uint64_t bytes_leased_ = 0;
  std::uint64_t peak_bytes_leased_ = 0;
  std::uint64_t leases_granted_ = 0;
  std::uint64_t leases_reclaimed_ = 0;
  bool admission_closed_ = false;  ///< watermark hysteresis state
  std::shared_ptr<void> liveness_ = std::make_shared<char>(0);

  metrics::TimeWeightedSeries* bytes_leased_series_ = nullptr;
  metrics::TimeWeightedSeries* leases_active_series_ = nullptr;
  metrics::Counter* granted_counter_ = nullptr;
  metrics::Counter* reclaimed_counter_ = nullptr;
};

}  // namespace exs::engine
