// The engine's shared-QP pool: the server half of stream multiplexing.
//
// Where the BufferPool bounds intermediate-ring memory and the
// ControlSlotPool bounds SRQ receives, the QpPool bounds *verbs state*: it
// owns one MuxGroup whose `width` slot queue pairs carry every muxed
// connection the acceptor admits.  Admission is a stream attach — O(1)
// bookkeeping on an already-connected transport — so accepting the 60,000th
// connection creates exactly as many queue pairs as accepting the first:
// zero.  Capacity returns automatically when an admitted socket tears down
// (its MuxStream detaches itself from the group on destruction).
//
// The pool's group must be wired to the client side's group once, before
// any handshake (MuxGroup::Connect) — establishing the QPs up front and
// then multiplexing handshakes over them is the whole point of the tier.
#pragma once

#include <cstdint>
#include <memory>

#include "common/metrics.hpp"
#include "exs/mux.hpp"
#include "verbs/device.hpp"

namespace exs::engine {

struct QpPoolOptions {
  /// Slot-channel shape of the shared group (width, per-QP credits,
  /// per-stream window, DRR quantum).
  MuxOptions mux;
  /// Streams the pool will carry at once.  The wire stream-id field caps
  /// this at 65536; admission beyond the cap is refused, not queued.
  std::uint32_t max_streams = 65536;
};

class QpPool {
 public:
  QpPool(verbs::Device& device, QpPoolOptions options,
         metrics::Registry* registry = nullptr);

  QpPool(const QpPool&) = delete;
  QpPool& operator=(const QpPool&) = delete;

  /// True while another stream fits under max_streams.
  bool AdmissionOpen() const;

  /// Attach the stream a REQ asked for, or null when the pool is full or
  /// the id is already taken (a client retrying an id that never detached).
  /// Refusals are counted, never fatal — admission control's contract.
  std::unique_ptr<MuxStream> Admit(std::uint32_t stream_id);

  MuxGroup& group() { return group_; }
  const MuxGroup& group() const { return group_; }
  std::size_t LiveStreams() const {
    return group_.stats().streams_attached - group_.stats().streams_detached;
  }
  std::uint64_t AdmissionRefusals() const { return admission_refusals_; }
  const QpPoolOptions& options() const { return options_; }

 private:
  QpPoolOptions options_;
  MuxGroup group_;
  std::uint64_t admission_refusals_ = 0;
  metrics::Counter* refusals_counter_ = nullptr;
};

}  // namespace exs::engine
