// SRQ-backed shared control-slot pool.
//
// The classic ControlChannel pre-posts `credits` private receives into a
// private slab — per connection.  At N connections the receiver carries
// N x credits posted receives even though arrivals are bursty.  This pool
// is the ControlSlotSource the engine hands to accepted sockets: one slab,
// one verbs SharedReceiveQueue, all receives posted up front; every
// SRQ-mode channel's queue pair drains the same pool FIFO.  Reservation
// accounting (credits per accepted connection, refunded at teardown) keeps
// the sum of per-peer credit grants within the pool, which is the
// RNR-freedom argument: a peer never sends beyond its grant, and every
// grant is covered by posted receives.
#pragma once

#include <cstdint>
#include <vector>

#include "common/metrics.hpp"
#include "exs/channel.hpp"
#include "exs/wire.hpp"
#include "verbs/device.hpp"
#include "verbs/srq.hpp"

namespace exs::engine {

class ControlSlotPool : public ControlSlotSource {
 public:
  /// `registry` (optional) receives the pool.slots_* instruments.
  ControlSlotPool(verbs::Device& device, std::uint32_t total_slots,
                  metrics::Registry* registry = nullptr);

  ControlSlotPool(const ControlSlotPool&) = delete;
  ControlSlotPool& operator=(const ControlSlotPool&) = delete;

  // ControlSlotSource
  verbs::SharedReceiveQueue& srq() override { return srq_; }
  bool ReserveSlots(std::uint32_t n) override;
  void UnreserveSlots(std::uint32_t n) override;
  const std::uint8_t* SlotMem(std::uint64_t slot) const override;
  void RepostSlot(std::uint64_t slot) override;

  /// Admission-control preflight: can a connection granting `n` credits be
  /// accepted without oversubscribing the pool?
  bool CanReserve(std::uint32_t n) const {
    return reserved_ + n <= total_slots_;
  }

  std::uint32_t total_slots() const { return total_slots_; }
  std::uint32_t reserved_slots() const { return reserved_; }
  std::uint64_t slab_bytes() const { return slab_.size(); }

 private:
  void PostSlot(std::uint64_t slot);
  void Sample();

  verbs::Device* device_;
  std::uint32_t total_slots_;
  std::uint32_t reserved_ = 0;
  std::vector<std::uint8_t> slab_;
  verbs::MemoryRegionPtr mr_;
  verbs::SharedReceiveQueue srq_;
  metrics::TimeWeightedSeries* reserved_series_ = nullptr;
};

}  // namespace exs::engine
