#include "exs/engine/qp_pool.hpp"

#include "common/check.hpp"
#include "common/logging.hpp"

namespace exs::engine {

QpPool::QpPool(verbs::Device& device, QpPoolOptions options,
               metrics::Registry* registry)
    : options_(options), group_(device, options.mux) {
  EXS_CHECK_MSG(options_.max_streams >= 1, "QP pool admits at least one");
  EXS_CHECK_MSG(options_.max_streams <= 65536,
                "max_streams exceeds the 16-bit wire stream-id space");
  if (registry != nullptr) {
    refusals_counter_ =
        &registry->GetCounter("mux.admission_refusals", "connections");
  }
}

bool QpPool::AdmissionOpen() const {
  return LiveStreams() < options_.max_streams;
}

std::unique_ptr<MuxStream> QpPool::Admit(std::uint32_t stream_id) {
  if (!AdmissionOpen() || group_.FindStream(stream_id) != nullptr) {
    ++admission_refusals_;
    if (refusals_counter_ != nullptr) refusals_counter_->Increment();
    EXS_DEBUG("QP pool refused stream " << stream_id << " ("
                                        << LiveStreams() << " live)");
    return nullptr;
  }
  return group_.AttachStream(stream_id);
}

}  // namespace exs::engine
