#include "exs/engine/progress_engine.hpp"

#include "common/check.hpp"

namespace exs::engine {

ProgressEngine::ProgressEngine(simnet::Cpu& cpu,
                               ProgressEngineOptions options,
                               metrics::Registry* registry)
    : cpu_(&cpu), options_(options) {
  EXS_CHECK_MSG(options_.max_events_per_tick > 0, "tick budget must be > 0");
  EXS_CHECK_MSG(options_.quantum > 0, "DRR quantum must be > 0");
  if (registry != nullptr) {
    ticks_counter_ = &registry->GetCounter("engine.ticks", "ticks");
    events_counter_ =
        &registry->GetCounter("engine.events_dispatched", "events");
    ready_series_ = &registry->GetSeries("engine.ready_depth", "sockets");
    registered_series_ =
        &registry->GetSeries("engine.sockets_registered", "sockets");
    tick_duration_hist_ =
        &registry->GetHistogram("engine.tick_duration", "ps");
    sched_delay_hist_ = &registry->GetHistogram("engine.sched_delay", "ps");
  }
}

void ProgressEngine::Register(Socket* socket, EventHandler handler) {
  EXS_CHECK_MSG(socket != nullptr, "Register(nullptr)");
  EXS_CHECK_MSG(entries_.find(socket) == entries_.end(),
                "socket already registered with the engine");
  auto entry = std::make_unique<Entry>();
  entry->socket = socket;
  entry->handler = std::move(handler);
  // Per-socket DRR-queue delay: lives in the socket's own registry so it
  // lands in the same snapshot as the socket's rail/stream instruments.
  entry->sched_delay =
      &socket->metrics_registry().GetHistogram("engine.sched_delay", "ps");
  entries_.emplace(socket, std::move(entry));
  if (registered_series_ != nullptr) {
    registered_series_->Record(cpu_->scheduler().Now(),
                               static_cast<double>(entries_.size()));
  }
  // Fires immediately if events are already queued, and thereafter on each
  // empty→non-empty edge.
  socket->events().SetReadinessWatcher(
      [this, socket] { NoteReadable(socket); });
}

void ProgressEngine::Unregister(Socket* socket) {
  auto it = entries_.find(socket);
  if (it == entries_.end()) return;
  socket->events().SetReadinessWatcher(nullptr);
  if (it->second.get() == serving_) {
    // Called from inside this socket's own event handler (kPeerClosed
    // teardown is the natural case).  The dispatch loop still holds a
    // reference to the entry, so detach it from the map but keep it alive
    // as a zombie until the loop unwinds; the dead flag stops dispatch
    // before the next event.
    it->second->dead = true;
    zombie_ = std::move(it->second);
  }
  entries_.erase(it);  // a stale ready_ entry is skipped by the lookup
  if (registered_series_ != nullptr) {
    registered_series_->Record(cpu_->scheduler().Now(),
                               static_cast<double>(entries_.size()));
  }
}

void ProgressEngine::NoteReadable(Socket* socket) {
  auto it = entries_.find(socket);
  if (it == entries_.end()) return;
  Entry& entry = *it->second;
  if (!entry.in_ready) {
    entry.in_ready = true;
    entry.ready_since = cpu_->scheduler().Now();
    ready_.push_back(socket);
    if (ready_series_ != nullptr) {
      ready_series_->Record(cpu_->scheduler().Now(),
                            static_cast<double>(ready_.size()));
    }
  }
  ScheduleTick();
}

void ProgressEngine::ScheduleTick() {
  if (tick_scheduled_ || ready_.empty()) return;
  tick_scheduled_ = true;
  // The work dispatched by the previous tick is what delays this one:
  // application event handling serialises on the node CPU.
  SimDuration cost =
      options_.tick_overhead +
      static_cast<SimDuration>(last_tick_events_) * options_.per_event_cpu;
  if (tick_duration_hist_ != nullptr) {
    tick_duration_hist_->Record(static_cast<std::uint64_t>(cost));
  }
  cpu_->Submit(cost, [this] {
    tick_scheduled_ = false;
    Tick();
  });
}

std::size_t ProgressEngine::Serve(Entry& entry, std::size_t budget) {
  entry.deficit += options_.quantum;
  std::size_t dispatched = 0;
  Event ev;
  while (entry.deficit > 0 && dispatched < budget &&
         entry.socket->events().Poll(&ev)) {
    --entry.deficit;
    ++dispatched;
    if (entry.handler) entry.handler(*entry.socket, ev);
    // The handler may have Unregister()ed this very socket; the entry is
    // then a detached zombie and neither it nor its socket (which the
    // caller may be tearing down) can be touched again.
    if (entry.dead) break;
    if (ev.type == EventType::kPeerClosed) {
      // Reclaim-on-idle: the incoming stream is done; hand a pool-leased
      // ring back the moment it can never be written again.
      entry.socket->TryReleaseRxRing();
    }
  }
  return dispatched;
}

void ProgressEngine::Tick() {
  ++ticks_;
  if (ticks_counter_ != nullptr) ticks_counter_->Increment();
  std::size_t budget = options_.max_events_per_tick;
  // Each pass serves the head socket one quantum and rotates it to the
  // tail while it still has events — classic DRR over the ready-list.
  // Terminates: every iteration either dispatches at least one event
  // (budget shrinks) or drops a drained/unregistered head (list shrinks).
  while (budget > 0 && !ready_.empty()) {
    Socket* socket = ready_.front();
    ready_.pop_front();
    auto it = entries_.find(socket);
    if (it == entries_.end()) continue;  // unregistered while ready
    Entry& entry = *it->second;
    // DRR scheduling delay: how long this socket waited in the ready-list
    // (or at the tail since its last quantum) before being served.
    const auto waited = static_cast<std::uint64_t>(
        cpu_->scheduler().Now() - entry.ready_since);
    if (sched_delay_hist_ != nullptr) sched_delay_hist_->Record(waited);
    if (entry.sched_delay != nullptr) entry.sched_delay->Record(waited);
    serving_ = &entry;
    std::size_t dispatched = Serve(entry, budget);
    serving_ = nullptr;
    budget -= dispatched;
    events_dispatched_ += dispatched;
    if (events_counter_ != nullptr) {
      events_counter_->Add(dispatched);
    }
    if (entry.dead) {
      // Unregistered from inside its own handler: drop the detached entry
      // now that nothing references it.  Its remaining events stay queued
      // for direct polling, exactly as a between-dispatch Unregister.
      zombie_.reset();
      continue;
    }
    if (entry.socket->events().Depth() > 0) {
      entry.deficit = entry.deficit > options_.quantum ? options_.quantum
                                                       : entry.deficit;
      entry.ready_since = cpu_->scheduler().Now();
      ready_.push_back(socket);  // still ready: back of the line
    } else {
      entry.in_ready = false;
      entry.deficit = 0;
      entry.socket->events().RearmWatcher();
    }
  }
  if (ready_series_ != nullptr) {
    ready_series_->Record(cpu_->scheduler().Now(),
                          static_cast<double>(ready_.size()));
  }
  last_tick_events_ = options_.max_events_per_tick - budget;
  ScheduleTick();  // no-op when the ready-list drained
}

}  // namespace exs::engine
