#include "exs/engine/buffer_pool.hpp"

#include "common/check.hpp"

namespace exs::engine {

BufferPool::BufferPool(verbs::Device& device, BufferPoolOptions options,
                       metrics::Registry* registry)
    : device_(&device), options_(options) {
  EXS_CHECK_MSG(options_.pool_bytes > 0 && options_.lease_bytes > 0,
                "buffer pool and lease sizes must be nonzero");
  EXS_CHECK_MSG(options_.pool_bytes % options_.lease_bytes == 0,
                "lease size must divide the pool slab evenly");
  EXS_CHECK_MSG(options_.low_watermark <= options_.high_watermark &&
                    options_.high_watermark <= 1.0,
                "watermarks must satisfy low <= high <= 1");
  slab_.resize(options_.pool_bytes);
  mr_ = device.RegisterMemory(slab_.data(), slab_.size());
  total_leases_ =
      static_cast<std::size_t>(options_.pool_bytes / options_.lease_bytes);
  free_.reserve(total_leases_);
  // LIFO free list, lowest index on top: recently released carves (warm
  // cache on real hardware) are reused first, and grants are deterministic.
  for (std::size_t i = total_leases_; i > 0; --i) free_.push_back(i - 1);
  leased_.assign(total_leases_, false);
  if (registry != nullptr) {
    bytes_leased_series_ = &registry->GetSeries("pool.bytes_leased", "bytes");
    leases_active_series_ = &registry->GetSeries("pool.leases_active",
                                                 "leases");
    granted_counter_ = &registry->GetCounter("pool.leases_granted", "leases");
    reclaimed_counter_ =
        &registry->GetCounter("pool.leases_reclaimed", "leases");
  }
  Sample();
}

void BufferPool::Sample() {
  SimTime now = device_->scheduler().Now();
  if (bytes_leased_series_ != nullptr) {
    bytes_leased_series_->Record(now, static_cast<double>(bytes_leased_));
  }
  if (leases_active_series_ != nullptr) {
    leases_active_series_->Record(now, static_cast<double>(LeasesActive()));
  }
}

RingLease BufferPool::Acquire() {
  if (free_.empty()) return RingLease{};
  std::size_t index = free_.back();
  free_.pop_back();
  leased_[index] = true;
  bytes_leased_ += options_.lease_bytes;
  if (bytes_leased_ > peak_bytes_leased_) peak_bytes_leased_ = bytes_leased_;
  ++leases_granted_;
  if (granted_counter_ != nullptr) granted_counter_->Increment();
  double fill = static_cast<double>(bytes_leased_) /
                static_cast<double>(options_.pool_bytes);
  if (fill >= options_.high_watermark) admission_closed_ = true;
  Sample();

  // The release closure carries the pool's liveness guard (the same
  // pattern as ControlSlotSource::LivenessToken): an accepted socket
  // routinely outlives the acceptor that owns this pool, and its EOF or
  // teardown path must not call back into a destroyed pool.
  return RingLease(
      slab_.data() + index * options_.lease_bytes, options_.lease_bytes, mr_,
      [this, index, alive = std::weak_ptr<void>(liveness_)] {
        if (alive.expired()) return;  // pool died first: nothing to return
        Release(index);
      });
}

void BufferPool::Release(std::size_t index) {
  EXS_CHECK_MSG(index < total_leases_ && leased_[index],
                "lease released twice or never granted");
  leased_[index] = false;
  free_.push_back(index);
  bytes_leased_ -= options_.lease_bytes;
  ++leases_reclaimed_;
  if (reclaimed_counter_ != nullptr) reclaimed_counter_->Increment();
  double fill = static_cast<double>(bytes_leased_) /
                static_cast<double>(options_.pool_bytes);
  if (admission_closed_ && fill <= options_.low_watermark) {
    admission_closed_ = false;
  }
  Sample();
}

bool BufferPool::AdmissionOpen() const {
  return !admission_closed_ && !free_.empty();
}

}  // namespace exs::engine
