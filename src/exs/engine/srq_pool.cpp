#include "exs/engine/srq_pool.hpp"

#include "common/check.hpp"

namespace exs::engine {

ControlSlotPool::ControlSlotPool(verbs::Device& device,
                                 std::uint32_t total_slots,
                                 metrics::Registry* registry)
    : device_(&device),
      total_slots_(total_slots),
      slab_(static_cast<std::size_t>(total_slots) * wire::kControlSlotBytes),
      srq_(device) {
  EXS_CHECK_MSG(total_slots > 0, "control slot pool must have slots");
  mr_ = device.RegisterMemory(slab_.data(), slab_.size());
  // Post the whole pool before any connection exists (§II-B startup rule,
  // applied once for the server instead of once per connection).
  for (std::uint64_t slot = 0; slot < total_slots_; ++slot) PostSlot(slot);
  if (registry != nullptr) {
    reserved_series_ = &registry->GetSeries("pool.slots_reserved", "slots");
  }
  Sample();
}

void ControlSlotPool::PostSlot(std::uint64_t slot) {
  verbs::RecvWorkRequest wr;
  wr.wr_id = slot;
  wr.sge.addr = reinterpret_cast<std::uint64_t>(
      slab_.data() + static_cast<std::size_t>(slot) * wire::kControlSlotBytes);
  wr.sge.length = wire::kControlSlotBytes;
  wr.sge.lkey = mr_->lkey();
  srq_.PostRecv(wr);
}

void ControlSlotPool::Sample() {
  if (reserved_series_ != nullptr) {
    reserved_series_->Record(device_->scheduler().Now(),
                             static_cast<double>(reserved_));
  }
}

bool ControlSlotPool::ReserveSlots(std::uint32_t n) {
  if (!CanReserve(n)) return false;
  reserved_ += n;
  Sample();
  return true;
}

void ControlSlotPool::UnreserveSlots(std::uint32_t n) {
  EXS_CHECK_MSG(reserved_ >= n, "unreserving more slots than reserved");
  reserved_ -= n;
  Sample();
}

const std::uint8_t* ControlSlotPool::SlotMem(std::uint64_t slot) const {
  EXS_CHECK_MSG(slot < total_slots_, "slot index outside the pool");
  return slab_.data() + static_cast<std::size_t>(slot) * wire::kControlSlotBytes;
}

void ControlSlotPool::RepostSlot(std::uint64_t slot) {
  EXS_CHECK_MSG(slot < total_slots_, "slot index outside the pool");
  PostSlot(slot);
}

}  // namespace exs::engine
