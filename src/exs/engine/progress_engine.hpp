// The fair progress engine: thousands of sockets, one poll loop.
//
// Server applications cannot afford a handler per socket charging CPU on
// every completion — the paper's handler mode models a dedicated reactor
// per connection, which is exactly what does not scale.  The engine is the
// epoll analogue: each registered socket's EventQueue signals an
// edge-triggered readiness watcher on its empty→non-empty transition, the
// engine keeps a ready-list of exactly those sockets, and a tick drains
// them with
//
//   * bounded work per tick — at most max_events_per_tick events are
//     dispatched before the engine yields the CPU and reschedules itself,
//     so one tick can never freeze the node, and
//   * deficit-round-robin fairness — each ready socket accumulates
//     `quantum` events of deficit per visit and is put back at the tail
//     while it still has queued events, so a firehose connection cannot
//     starve a trickle.
//
// CPU accounting: a tick is submitted to the node CPU with cost
// tick_overhead + (events dispatched by the previous tick) x per_event_cpu
// — the application work done in one tick delays the next, which is how
// receiver-side serialisation enters the timing model at engine scale.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/metrics.hpp"
#include "exs/socket.hpp"
#include "simnet/cpu.hpp"

namespace exs::engine {

struct ProgressEngineOptions {
  std::size_t max_events_per_tick = 64;
  std::size_t quantum = 4;  ///< DRR deficit added per ready-list visit
  SimDuration tick_overhead = 0;   ///< fixed CPU cost of entering a tick
  SimDuration per_event_cpu = 0;   ///< CPU cost per dispatched event
};

class ProgressEngine {
 public:
  using EventHandler = std::function<void(Socket&, const Event&)>;

  /// `registry` (optional) receives the engine.* instruments.
  ProgressEngine(simnet::Cpu& cpu, ProgressEngineOptions options,
                 metrics::Registry* registry = nullptr);

  ProgressEngine(const ProgressEngine&) = delete;
  ProgressEngine& operator=(const ProgressEngine&) = delete;

  /// Watch `socket` and dispatch its events through `handler` from the
  /// engine's tick loop.  The socket must outlive its registration.  A
  /// kPeerClosed event additionally triggers ring-lease reaping
  /// (Socket::TryReleaseRxRing) after the handler runs.
  void Register(Socket* socket, EventHandler handler);

  /// Stop watching `socket` (idempotent).  Pending events stay in its
  /// queue for direct polling; the engine just no longer dispatches them.
  /// Safe to call from inside an event handler — including on the socket
  /// currently being served: dispatch for that socket stops before the
  /// next event, and no further event of the current batch is delivered.
  void Unregister(Socket* socket);

  std::size_t RegisteredCount() const { return entries_.size(); }
  std::size_t ReadyCount() const { return ready_.size(); }
  std::uint64_t TicksRun() const { return ticks_; }
  std::uint64_t EventsDispatched() const { return events_dispatched_; }

 private:
  struct Entry {
    Socket* socket = nullptr;
    EventHandler handler;
    std::size_t deficit = 0;
    bool in_ready = false;
    /// When this socket last (re-)entered the ready-list; the gap to the
    /// serve that follows is its DRR scheduling delay.
    SimTime ready_since = 0;
    /// Per-socket "engine.sched_delay" histogram, resolved from the
    /// socket's own registry at Register time (per-DRR-queue HoL view).
    metrics::Histogram* sched_delay = nullptr;
    /// Unregistered from inside its own event handler while the dispatch
    /// loop still holds a reference: the entry is detached from entries_
    /// and parked in zombie_ until the loop lets go of it.
    bool dead = false;
  };

  void NoteReadable(Socket* socket);
  void ScheduleTick();
  void Tick();
  /// Serve one ready socket within `budget`; returns events dispatched.
  std::size_t Serve(Entry& entry, std::size_t budget);

  simnet::Cpu* cpu_;
  ProgressEngineOptions options_;
  std::unordered_map<Socket*, std::unique_ptr<Entry>> entries_;
  Entry* serving_ = nullptr;         ///< entry whose handler is running
  std::unique_ptr<Entry> zombie_;    ///< serving_ unregistered mid-dispatch
  std::deque<Socket*> ready_;
  bool tick_scheduled_ = false;
  std::size_t last_tick_events_ = 0;  ///< charged to the next tick's cost
  std::uint64_t ticks_ = 0;
  std::uint64_t events_dispatched_ = 0;

  metrics::Counter* ticks_counter_ = nullptr;
  metrics::Counter* events_counter_ = nullptr;
  metrics::TimeWeightedSeries* ready_series_ = nullptr;
  metrics::TimeWeightedSeries* registered_series_ = nullptr;
  /// Modeled CPU cost charged for each tick (overhead + prior work).
  metrics::Histogram* tick_duration_hist_ = nullptr;
  /// Ready→served wait across all sockets (per-socket copies in Entry).
  metrics::Histogram* sched_delay_hist_ = nullptr;
};

}  // namespace exs::engine
