#include "exs/rpc/rpc_client.hpp"

namespace exs::rpc {

RpcClient::RpcClient(Socket& socket, simnet::EventScheduler& scheduler,
                     RpcClientOptions options)
    : socket_(&socket),
      scheduler_(&scheduler),
      options_(options),
      decoder_([this](const MessageView& v) { OnMessage(v); },
               [this](const std::string&) { framing_failed_ = true; }),
      recv_buffer_(options.recv_chunk_bytes) {
  socket_->events().SetHandler([this](const Event& ev) { OnEvent(ev); });
  PostRecv();
}

std::uint64_t RpcClient::Call(Op op, const std::string& key,
                              const std::uint8_t* value,
                              std::uint32_t value_len, ResponseFn on_done,
                              SimDuration deadline) {
  const std::uint64_t id = ledger_.RecordIssue();
  if (deadline == kDefaultDeadline) deadline = options_.default_deadline;
  if (pending_.size() >= options_.max_outstanding || close_requested_) {
    // Shed at submission: the call never touches the wire, so the server
    // cannot also resolve it — the outcome is unconditionally unique.
    ++ledger_.shed_local;
    ledger_.RecordOutcome(id, Outcome::kRefused);
    if (on_done) {
      Result r;
      r.correlation_id = id;
      r.outcome = Outcome::kRefused;
      r.refused_remotely = false;
      on_done(r);
    }
    return id;
  }
  std::vector<std::uint8_t> frame = EncodeMessage(
      MessageType::kRequest, static_cast<std::uint8_t>(op), id, key, value,
      value_len);
  PendingCall call;
  call.issued_at = scheduler_->Now();
  call.on_done = std::move(on_done);
  pending_.emplace(id, std::move(call));
  const std::uint64_t send_id = socket_->Send(frame.data(), frame.size());
  send_buffers_.emplace(send_id, std::move(frame));
  if (deadline > 0) {
    scheduler_->ScheduleAfter(deadline, [this, id] { OnDeadline(id); });
  }
  return id;
}

void RpcClient::Cancel(std::uint64_t correlation_id) {
  auto it = pending_.find(correlation_id);
  if (it == pending_.end()) return;
  ++ledger_.cancelled;
  Resolve(correlation_id, Outcome::kTimedOut, Status::kOk, false, nullptr);
}

void RpcClient::CloseSend() {
  if (close_requested_) return;
  close_requested_ = true;
  socket_->Close();
}

void RpcClient::OnEvent(const Event& ev) {
  switch (ev.type) {
    case EventType::kSendComplete:
      send_buffers_.erase(ev.id);
      break;
    case EventType::kRecvComplete:
      recv_outstanding_ = false;
      if (ev.bytes != 0) {
        response_bytes_ += ev.bytes;
        decoder_.Feed(recv_buffer_.data(), ev.bytes);
      }
      if (!peer_closed_) PostRecv();
      break;
    case EventType::kPeerClosed:
      peer_closed_ = true;
      break;
    case EventType::kError:
      break;
  }
}

void RpcClient::OnMessage(const MessageView& view) {
  if (view.header.type != MessageType::kResponse) {
    framing_failed_ = true;
    return;
  }
  const std::uint64_t id = view.header.correlation_id;
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    // Late answer to a call the deadline (or Cancel) already resolved.
    ++ledger_.stale_responses;
    return;
  }
  const auto status = static_cast<Status>(view.header.op_or_status);
  if (status == Status::kRefused) {
    Resolve(id, Outcome::kRefused, status, /*refused_remotely=*/true, &view);
  } else {
    Resolve(id, Outcome::kAnswered, status, false, &view);
  }
}

void RpcClient::OnDeadline(std::uint64_t correlation_id) {
  // Lazy cancellation: the timer always fires; only a still-pending call
  // times out.
  if (pending_.find(correlation_id) == pending_.end()) return;
  Resolve(correlation_id, Outcome::kTimedOut, Status::kOk, false, nullptr);
}

void RpcClient::Resolve(std::uint64_t correlation_id, Outcome outcome,
                        Status status, bool refused_remotely,
                        const MessageView* view) {
  auto it = pending_.find(correlation_id);
  if (it == pending_.end()) return;
  if (!ledger_.RecordOutcome(correlation_id, outcome)) {
    pending_.erase(it);
    return;
  }
  Result r;
  r.correlation_id = correlation_id;
  r.outcome = outcome;
  r.status = status;
  r.refused_remotely = refused_remotely;
  r.latency = scheduler_->Now() - it->second.issued_at;
  if (outcome == Outcome::kAnswered) {
    answer_latencies_.push_back(r.latency);
    if (options_.deliver_values && view != nullptr &&
        view->header.value_len != 0) {
      r.value.assign(view->value, view->value + view->header.value_len);
    }
  }
  ResponseFn on_done = std::move(it->second.on_done);
  pending_.erase(it);
  if (on_done) on_done(r);
}

void RpcClient::PostRecv() {
  if (recv_outstanding_ || peer_closed_) return;
  recv_outstanding_ = true;
  socket_->Recv(recv_buffer_.data(), recv_buffer_.size());
}

}  // namespace exs::rpc
