#include "exs/rpc/framing.hpp"

namespace exs::rpc {

const char* ToString(Op op) {
  switch (op) {
    case Op::kGet: return "GET";
    case Op::kPut: return "PUT";
    case Op::kDel: return "DEL";
  }
  return "?";
}

const char* ToString(Status status) {
  switch (status) {
    case Status::kOk: return "OK";
    case Status::kNotFound: return "NOT_FOUND";
    case Status::kRefused: return "REFUSED";
  }
  return "?";
}

namespace {

void PutU16(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

void PutU32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void PutU64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t GetU16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>(in[0] | (in[1] << 8));
}

std::uint32_t GetU32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

std::uint64_t GetU64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

}  // namespace

void EncodeHeader(const MessageHeader& h, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(h.type);
  out[1] = h.op_or_status;
  PutU16(out + 2, h.key_len);
  PutU32(out + 4, h.value_len);
  PutU64(out + 8, h.correlation_id);
}

bool DecodeHeader(const std::uint8_t* in, MessageHeader* out) {
  const std::uint8_t type = in[0];
  if (type != static_cast<std::uint8_t>(MessageType::kRequest) &&
      type != static_cast<std::uint8_t>(MessageType::kResponse)) {
    return false;
  }
  out->type = static_cast<MessageType>(type);
  out->op_or_status = in[1];
  out->key_len = GetU16(in + 2);
  out->value_len = GetU32(in + 4);
  out->correlation_id = GetU64(in + 8);
  return out->key_len <= kMaxKeyBytes && out->value_len <= kMaxValueBytes;
}

std::vector<std::uint8_t> EncodeMessage(MessageType type, std::uint8_t op,
                                        std::uint64_t correlation_id,
                                        const std::string& key,
                                        const std::uint8_t* value,
                                        std::uint32_t value_len) {
  MessageHeader h;
  h.type = type;
  h.op_or_status = op;
  h.key_len = static_cast<std::uint16_t>(key.size());
  h.value_len = value_len;
  h.correlation_id = correlation_id;
  std::vector<std::uint8_t> out(kHeaderBytes + key.size() + value_len);
  EncodeHeader(h, out.data());
  std::memcpy(out.data() + kHeaderBytes, key.data(), key.size());
  if (value_len != 0) {
    std::memcpy(out.data() + kHeaderBytes + key.size(), value, value_len);
  }
  return out;
}

void FrameDecoder::Feed(const std::uint8_t* data, std::size_t len) {
  if (failed_ || len == 0) return;
  bytes_consumed_ += len;
  buffer_.insert(buffer_.end(), data, data + len);
  std::size_t offset = 0;
  while (buffer_.size() - offset >= kHeaderBytes) {
    MessageHeader h;
    if (!DecodeHeader(buffer_.data() + offset, &h)) {
      failed_ = true;
      if (on_error_) on_error_("malformed frame header in stream");
      buffer_.clear();
      return;
    }
    const std::size_t frame = kHeaderBytes + h.key_len + h.value_len;
    if (buffer_.size() - offset < frame) break;
    MessageView view;
    view.header = h;
    view.key = buffer_.data() + offset + kHeaderBytes;
    view.value = view.key + h.key_len;
    ++messages_decoded_;
    on_message_(view);
    offset += frame;
  }
  if (offset != 0) buffer_.erase(buffer_.begin(), buffer_.begin() + offset);
}

}  // namespace exs::rpc
