// Toy sharded KV service over the RPC framing: GET/PUT/DEL against a
// fixed-size value slab.
//
// Storage is sharded by key hash (FNV-1a mod shards) into per-shard hash
// maps; values live in one shared slab of fixed-size slots, so server
// memory is O(slab), not O(keys x value size) — a PUT that finds the
// slab exhausted (or a value wider than a slot) is REFUSED, never
// queued, which is the server-side leg of the RPC conservation
// invariant: the client sees exactly one of answered/refused per
// request, under any memory pressure.
//
// The response path exercises the PR 9 hot path: GET hits gather the
// 16-byte response header and the slab slot with one Sendv (two SGEs,
// one completion, no host copy of the value).  Because the HCA reads
// the slot asynchronously, slots are *pinned* for the life of the send:
// a DEL or overwriting PUT that races an in-flight GET response marks
// the slot zombie, and the completion frees it — the slab never hands
// out a slot the wire is still reading.
//
// The server is transport-agnostic: Attach() owns a socket's event
// queue directly (handler mode, muxed or dedicated pairs), while
// OnAccept()/HandleEvent() slot into engine::Acceptor::Listen for
// ProgressEngine-driven fleets.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "exs/rpc/framing.hpp"
#include "exs/rpc/ledger.hpp"
#include "exs/socket.hpp"

namespace exs::rpc {

/// Fixed-slot value arena with pin counts.  Release on a pinned slot
/// defers the free to the last Unpin (the zombie path).
class ValueSlab {
 public:
  ValueSlab(std::uint32_t slots, std::uint32_t slot_bytes);

  /// Returns a free slot index, or -1 when the slab is exhausted.
  std::int32_t Allocate();
  /// Free the slot now, or mark it zombie if sends still pin it.
  void Release(std::int32_t slot);
  void Pin(std::int32_t slot);
  void Unpin(std::int32_t slot);

  std::uint8_t* Data(std::int32_t slot) {
    return arena_.data() + static_cast<std::size_t>(slot) * slot_bytes_;
  }
  void SetLength(std::int32_t slot, std::uint32_t len) {
    lengths_[static_cast<std::size_t>(slot)] = len;
  }
  std::uint32_t Length(std::int32_t slot) const {
    return lengths_[static_cast<std::size_t>(slot)];
  }

  std::uint32_t capacity() const { return slots_; }
  std::uint32_t slot_bytes() const { return slot_bytes_; }
  std::uint32_t in_use() const { return in_use_; }
  std::uint32_t zombies() const { return zombies_; }

 private:
  std::uint32_t slots_;
  std::uint32_t slot_bytes_;
  std::uint32_t in_use_ = 0;
  std::uint32_t zombies_ = 0;
  std::vector<std::uint8_t> arena_;
  std::vector<std::uint32_t> lengths_;
  std::vector<std::uint16_t> pins_;
  std::vector<std::uint8_t> zombie_;
  std::vector<std::int32_t> free_list_;
};

struct KvServerOptions {
  std::uint32_t shards = 8;
  /// Total fixed-size value slots (the whole store's memory budget).
  std::uint32_t slab_slots = 4096;
  std::uint32_t slot_bytes = 512;
  std::uint64_t recv_chunk_bytes = 2 * kKiB;
  /// Gather header+value responses with Sendv (one completion, zero
  /// value copy).  Off, responses are flattened into one Send buffer —
  /// the comparison arm.
  bool sendv_responses = true;
};

class KvServer {
 public:
  struct Stats {
    std::uint64_t gets = 0;
    std::uint64_t puts = 0;
    std::uint64_t dels = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t slab_full_refusals = 0;
    std::uint64_t oversize_refusals = 0;
    std::uint64_t request_bytes = 0;
    std::uint64_t response_bytes = 0;
    std::uint64_t sendv_responses = 0;
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_closed = 0;
    std::uint64_t framing_errors = 0;
  };

  explicit KvServer(KvServerOptions options = {});

  // Engine path: hand these to engine::Acceptor::Listen as the event
  // handler and accept callback.
  void OnAccept(Socket& socket);
  void HandleEvent(Socket& socket, const Event& ev);

  /// Direct path: take over the socket's event queue (handler mode) and
  /// post the first receive.  The socket must already be connected.
  void Attach(Socket& socket);

  const Stats& stats() const { return stats_; }
  const RpcServerCounters& counters() const { return counters_; }
  const ValueSlab& slab() const { return slab_; }
  std::uint32_t ShardOf(const std::string& key) const;
  /// Requests routed to each shard (sharding witness for tests).
  const std::vector<std::uint64_t>& shard_requests() const {
    return shard_requests_;
  }
  std::uint64_t keys_stored() const;
  std::uint64_t live_connections() const { return conns_.size(); }

 private:
  struct PendingSend {
    std::vector<std::uint8_t> data;  ///< header (+ inline value w/o sendv)
    std::int32_t pinned_slot = -1;
  };
  struct Conn {
    Socket* socket = nullptr;
    std::unique_ptr<FrameDecoder> decoder;
    std::vector<std::uint8_t> recv_buffer;
    std::unordered_map<std::uint64_t, PendingSend> sends;  ///< by send id
    bool recv_outstanding = false;
    bool peer_closed = false;
    bool closed = false;
  };
  struct Shard {
    std::unordered_map<std::string, std::int32_t> map;  ///< key -> slot
  };

  void OnRequest(Conn& conn, const MessageView& view);
  void Respond(Conn& conn, std::uint64_t correlation_id, Status status,
               std::int32_t value_slot);
  void PostRecv(Conn& conn);
  void MaybeReap(Socket& socket, Conn& conn);

  KvServerOptions options_;
  Stats stats_;
  RpcServerCounters counters_;
  ValueSlab slab_;
  std::vector<Shard> shards_;
  std::vector<std::uint64_t> shard_requests_;
  std::unordered_map<Socket*, std::unique_ptr<Conn>> conns_;
};

}  // namespace exs::rpc
