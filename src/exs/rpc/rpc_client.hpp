// Pipelined request-response RPC over one EXS stream socket.
//
// The client owns the socket's event queue (handler mode), frames
// requests with dense per-client correlation ids, and keeps any number of
// calls outstanding up to Options::max_outstanding — responses match by
// correlation id, so the server may interleave work across pipelined
// requests freely (it does not today, but the protocol permits it).
//
// Deadlines use the simulator's timer wheel with *lazy cancellation*: a
// response arriving first resolves the call and the timer later fires as
// a no-op, which needs no cancellation support from the scheduler and
// keeps the hot path allocation-free.  The conservation rule (see
// ledger.hpp) is enforced at the single resolution point: whichever of
// {response, deadline, explicit cancel, local shed} reaches the call
// first records its outcome; everything after is counted stale.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "exs/rpc/framing.hpp"
#include "exs/rpc/ledger.hpp"
#include "exs/socket.hpp"
#include "simnet/event_scheduler.hpp"

namespace exs::rpc {

struct RpcClientOptions {
  /// Deadline applied when Call passes kDefaultDeadline; 0 = no timeout.
  SimDuration default_deadline = 0;
  /// Calls in flight before new submissions are shed locally (recorded
  /// as refused without touching the wire) — the client-side admission
  /// bound of an open-loop workload.
  std::uint32_t max_outstanding = 256;
  /// Receive posting granularity; any value works (the frame decoder
  /// reassembles across completions).
  std::uint64_t recv_chunk_bytes = 2 * kKiB;
  /// Copy answered GET values into Result::value (benches that only
  /// time responses turn this off).
  bool deliver_values = true;
};

class RpcClient {
 public:
  /// Sentinel for "use RpcClientOptions::default_deadline".
  static constexpr SimDuration kDefaultDeadline = -1;

  struct Result {
    std::uint64_t correlation_id = 0;
    Outcome outcome = Outcome::kPending;
    /// Server status; meaningful only when a response resolved the call
    /// (outcome kAnswered, or kRefused with refused_remotely true).
    Status status = Status::kOk;
    bool refused_remotely = false;
    std::vector<std::uint8_t> value;  ///< GET payload on an OK answer
    SimDuration latency = 0;          ///< issue -> resolution
  };
  using ResponseFn = std::function<void(const Result&)>;

  /// The socket must already be connected.  The client installs itself as
  /// the socket's event handler and posts the first receive.
  RpcClient(Socket& socket, simnet::EventScheduler& scheduler,
            RpcClientOptions options = {});

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Issue a call; returns its correlation id.  `deadline` of
  /// kDefaultDeadline uses the option default; 0 disables the timeout for
  /// this call.  The callback (optional) fires exactly once, at the
  /// call's single resolution point.
  std::uint64_t Call(Op op, const std::string& key,
                     const std::uint8_t* value = nullptr,
                     std::uint32_t value_len = 0, ResponseFn on_done = nullptr,
                     SimDuration deadline = kDefaultDeadline);

  /// Abandon a pending call right now (outcome kTimedOut, counted under
  /// ledger().cancelled).  A response arriving later is stale.  No-op on
  /// an already-resolved call.
  void Cancel(std::uint64_t correlation_id);

  /// Orderly shutdown of the outgoing direction (no further Calls).
  void CloseSend();

  const RpcLedger& ledger() const { return ledger_; }
  RpcLedger& ledger() { return ledger_; }
  std::uint64_t pending_calls() const { return pending_.size(); }
  bool peer_closed() const { return peer_closed_; }
  /// Exact issue->answer durations of every answered call, for
  /// nearest-rank percentile reports (spans::Summarise).
  const std::vector<SimDuration>& answer_latencies() const {
    return answer_latencies_;
  }
  std::uint64_t response_bytes() const { return response_bytes_; }
  bool framing_failed() const { return framing_failed_; }

 private:
  struct PendingCall {
    SimTime issued_at = 0;
    ResponseFn on_done;
  };

  void OnEvent(const Event& ev);
  void OnMessage(const MessageView& view);
  void OnDeadline(std::uint64_t correlation_id);
  void Resolve(std::uint64_t correlation_id, Outcome outcome, Status status,
               bool refused_remotely, const MessageView* view);
  void PostRecv();

  Socket* socket_;
  simnet::EventScheduler* scheduler_;
  RpcClientOptions options_;
  RpcLedger ledger_;
  std::unordered_map<std::uint64_t, PendingCall> pending_;  ///< by corr id
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> send_buffers_;
  FrameDecoder decoder_;
  std::vector<std::uint8_t> recv_buffer_;
  std::vector<SimDuration> answer_latencies_;
  std::uint64_t response_bytes_ = 0;
  bool recv_outstanding_ = false;
  bool peer_closed_ = false;
  bool close_requested_ = false;
  bool framing_failed_ = false;
};

}  // namespace exs::rpc
