// Message framing for the RPC tier: fixed-header frames over a byte
// stream.
//
// EXS streams carry bytes, not messages (SOCK_STREAM semantics — §II-A);
// an RPC needs message boundaries back.  This is the thin framing seam the
// RPC client and KV server share: every message is a 16-byte
// little-endian header followed by the key bytes and then the value
// bytes.  The header carries a correlation id so responses can be matched
// to pipelined requests in any completion order, and a one-byte
// op-or-status field whose meaning depends on the message type.
//
// The decoder is incremental: Recv completions hand it arbitrary byte
// runs (a single completion may carry half a header, or three messages
// and a fragment) and it fires the message callback once per complete
// frame, in stream order.  Because the EXS stream is reliable and
// ordered, no resynchronisation markers are needed — the length fields
// alone delimit frames.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

namespace exs::rpc {

enum class MessageType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
};

/// Request operations (MessageHeader::op_or_status on a kRequest).
enum class Op : std::uint8_t {
  kGet = 1,
  kPut = 2,
  kDel = 3,
};

/// Response statuses (MessageHeader::op_or_status on a kResponse).
enum class Status : std::uint8_t {
  kOk = 1,
  kNotFound = 2,
  /// The server declined to serve the request (value slab exhausted or
  /// oversized value) — the "refused" leg of the conservation invariant.
  kRefused = 3,
};

const char* ToString(Op op);
const char* ToString(Status status);

/// Fixed 16-byte wire header, always little-endian regardless of host
/// order (encoded/decoded byte by byte).
struct MessageHeader {
  MessageType type = MessageType::kRequest;
  std::uint8_t op_or_status = 0;
  std::uint16_t key_len = 0;
  std::uint32_t value_len = 0;
  std::uint64_t correlation_id = 0;
};

inline constexpr std::size_t kHeaderBytes = 16;

/// Hard bounds the decoder enforces; a header exceeding either is a
/// framing violation (reported through the decoder's error callback —
/// on a trusted in-simulation peer it means a bug, not an attack).
inline constexpr std::uint16_t kMaxKeyBytes = 1024;
inline constexpr std::uint32_t kMaxValueBytes = 1 * 1024 * 1024;

/// Serialise a header into exactly kHeaderBytes at `out`.
void EncodeHeader(const MessageHeader& h, std::uint8_t* out);
/// Parse kHeaderBytes at `in`; returns false when the type byte or the
/// length bounds are invalid.
bool DecodeHeader(const std::uint8_t* in, MessageHeader* out);

/// One complete decoded message.  The key/value pointers alias the
/// decoder's internal buffer and are valid only for the duration of the
/// callback.
struct MessageView {
  MessageHeader header;
  const std::uint8_t* key = nullptr;    ///< header.key_len bytes
  const std::uint8_t* value = nullptr;  ///< header.value_len bytes

  std::string KeyString() const {
    return std::string(reinterpret_cast<const char*>(key), header.key_len);
  }
};

/// Encode a whole message (header + key + value) into one owned buffer.
std::vector<std::uint8_t> EncodeMessage(MessageType type, std::uint8_t op,
                                        std::uint64_t correlation_id,
                                        const std::string& key,
                                        const std::uint8_t* value,
                                        std::uint32_t value_len);

/// Incremental frame decoder: feed it byte runs as they arrive, get one
/// callback per complete message.  Never throws on malformed input —
/// a bad header stops the decoder and fires the error callback once
/// (the stream has lost framing; nothing after the bad header can be
/// trusted).
class FrameDecoder {
 public:
  using MessageFn = std::function<void(const MessageView&)>;
  using ErrorFn = std::function<void(const std::string&)>;

  explicit FrameDecoder(MessageFn on_message, ErrorFn on_error = nullptr)
      : on_message_(std::move(on_message)), on_error_(std::move(on_error)) {}

  /// Consume `len` bytes; fires on_message for every frame completed.
  void Feed(const std::uint8_t* data, std::size_t len);

  /// True when no partial frame is buffered — the stream sits exactly on
  /// a message boundary (the quiescence condition connection teardown
  /// checks).
  bool Idle() const { return buffer_.empty(); }
  bool Failed() const { return failed_; }
  std::uint64_t messages_decoded() const { return messages_decoded_; }
  std::uint64_t bytes_consumed() const { return bytes_consumed_; }

 private:
  MessageFn on_message_;
  ErrorFn on_error_;
  std::vector<std::uint8_t> buffer_;  ///< partial-frame carry-over
  bool failed_ = false;
  std::uint64_t messages_decoded_ = 0;
  std::uint64_t bytes_consumed_ = 0;
};

}  // namespace exs::rpc
