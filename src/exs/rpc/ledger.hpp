// The RPC conservation ledger: the ground truth CheckRpcConservation
// replays.
//
// The tier's safety statement mirrors the stream layer's byte
// conservation: every request a client issues reaches exactly one
// terminal outcome — answered, timed out, or refused — never zero and
// never two.  A response that arrives after its call already timed out
// is *stale*: it is counted (the bytes are real and the server did the
// work) but it must not flip the outcome a second time.
//
// The ledger deliberately records outcome *attempts*, not just the final
// state: `outcome_count[i]` increments on every RecordOutcome call, so a
// client bug that resolves a call twice is visible to the checker as a
// count of 2 even if both attempts agreed — the audit catches the
// double-resolution itself, not merely contradictory resolutions
// (tests/rpc_test.cpp forges exactly this to prove conviction).
#pragma once

#include <cstdint>
#include <vector>

namespace exs::rpc {

enum class Outcome : std::uint8_t {
  kPending = 0,
  kAnswered = 1,  ///< a response (OK or NOT_FOUND) resolved the call
  kTimedOut = 2,  ///< the deadline fired first (or the call was cancelled)
  kRefused = 3,   ///< the server answered REFUSED, or the client shed the
                  ///< call at submission (pipeline overflow)
};

/// Per-client request ledger.  Correlation ids are dense per client,
/// starting at 1, so request i lives at index i-1.
struct RpcLedger {
  /// Terminal outcome of each issued request (first outcome recorded
  /// wins; later attempts only bump outcome_count).
  std::vector<std::uint8_t> outcome;
  /// Times an outcome was recorded for each request — exactly 1 for a
  /// correct client.
  std::vector<std::uint8_t> outcome_count;
  /// Responses that arrived for an already-resolved call (post-timeout
  /// arrivals).  Not an outcome.
  std::uint64_t stale_responses = 0;
  /// Cancellations folded into kTimedOut (locally abandoned calls),
  /// tracked separately for reporting.
  std::uint64_t cancelled = 0;
  /// Requests shed client-side (pipeline overflow) — these carry
  /// kRefused without ever touching the wire.
  std::uint64_t shed_local = 0;

  std::uint64_t issued() const { return outcome.size(); }

  /// Issue request with the next dense correlation id; returns the id.
  std::uint64_t RecordIssue() {
    outcome.push_back(static_cast<std::uint8_t>(Outcome::kPending));
    outcome_count.push_back(0);
    return outcome.size();
  }

  /// Record a terminal outcome for `correlation_id`.  Returns true when
  /// this was the first outcome (the caller may run completion actions);
  /// false means the call was already resolved — the attempt is still
  /// counted for the audit.
  bool RecordOutcome(std::uint64_t correlation_id, Outcome o) {
    if (correlation_id == 0 || correlation_id > outcome.size()) return false;
    const std::size_t i = correlation_id - 1;
    if (outcome_count[i] != 0xff) ++outcome_count[i];
    if (outcome[i] != static_cast<std::uint8_t>(Outcome::kPending)) {
      return false;
    }
    outcome[i] = static_cast<std::uint8_t>(o);
    return true;
  }

  std::uint64_t Count(Outcome o) const {
    std::uint64_t n = 0;
    for (std::uint8_t v : outcome) {
      if (v == static_cast<std::uint8_t>(o)) ++n;
    }
    return n;
  }
};

/// Server-side conservation counters, mirrored by the KV server.
struct RpcServerCounters {
  std::uint64_t requests_received = 0;
  std::uint64_t responses_sent = 0;  ///< answered + refused
  std::uint64_t answered = 0;        ///< OK or NOT_FOUND
  std::uint64_t refused = 0;         ///< REFUSED status
};

}  // namespace exs::rpc
