#include "exs/rpc/kv_server.hpp"

#include <cassert>
#include <cstring>

namespace exs::rpc {

ValueSlab::ValueSlab(std::uint32_t slots, std::uint32_t slot_bytes)
    : slots_(slots),
      slot_bytes_(slot_bytes),
      arena_(static_cast<std::size_t>(slots) * slot_bytes),
      lengths_(slots, 0),
      pins_(slots, 0),
      zombie_(slots, 0) {
  free_list_.reserve(slots);
  // Pop order is ascending slot index (cosmetic, but deterministic).
  for (std::uint32_t i = slots; i-- > 0;) {
    free_list_.push_back(static_cast<std::int32_t>(i));
  }
}

std::int32_t ValueSlab::Allocate() {
  if (free_list_.empty()) return -1;
  const std::int32_t slot = free_list_.back();
  free_list_.pop_back();
  ++in_use_;
  return slot;
}

void ValueSlab::Release(std::int32_t slot) {
  const auto i = static_cast<std::size_t>(slot);
  if (pins_[i] != 0) {
    // The wire is still reading this slot; the last Unpin frees it.
    if (!zombie_[i]) {
      zombie_[i] = 1;
      ++zombies_;
    }
    return;
  }
  --in_use_;
  free_list_.push_back(slot);
}

void ValueSlab::Pin(std::int32_t slot) {
  ++pins_[static_cast<std::size_t>(slot)];
}

void ValueSlab::Unpin(std::int32_t slot) {
  const auto i = static_cast<std::size_t>(slot);
  assert(pins_[i] != 0);
  if (--pins_[i] == 0 && zombie_[i]) {
    zombie_[i] = 0;
    --zombies_;
    --in_use_;
    free_list_.push_back(slot);
  }
}

KvServer::KvServer(KvServerOptions options)
    : options_(options),
      slab_(options.slab_slots, options.slot_bytes),
      shards_(options.shards == 0 ? 1 : options.shards),
      shard_requests_(shards_.size(), 0) {}

std::uint32_t KvServer::ShardOf(const std::string& key) const {
  // FNV-1a, the repo's standard fingerprint hash.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) h = (h ^ c) * 0x100000001b3ULL;
  return static_cast<std::uint32_t>(h % shards_.size());
}

std::uint64_t KvServer::keys_stored() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.map.size();
  return n;
}

void KvServer::OnAccept(Socket& socket) {
  auto conn = std::make_unique<Conn>();
  Conn* raw = conn.get();
  raw->socket = &socket;
  raw->recv_buffer.resize(options_.recv_chunk_bytes);
  raw->decoder = std::make_unique<FrameDecoder>(
      [this, raw](const MessageView& v) { OnRequest(*raw, v); },
      [this](const std::string&) { ++stats_.framing_errors; });
  conns_.emplace(&socket, std::move(conn));
  ++stats_.connections_accepted;
  PostRecv(*raw);
}

void KvServer::Attach(Socket& socket) {
  OnAccept(socket);
  Socket* s = &socket;
  socket.events().SetHandler(
      [this, s](const Event& ev) { HandleEvent(*s, ev); });
}

void KvServer::HandleEvent(Socket& socket, const Event& ev) {
  auto it = conns_.find(&socket);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  switch (ev.type) {
    case EventType::kSendComplete: {
      auto send = conn.sends.find(ev.id);
      if (send != conn.sends.end()) {
        if (send->second.pinned_slot >= 0) {
          slab_.Unpin(send->second.pinned_slot);
        }
        conn.sends.erase(send);
      }
      MaybeReap(socket, conn);
      break;
    }
    case EventType::kRecvComplete:
      conn.recv_outstanding = false;
      if (ev.bytes != 0) {
        stats_.request_bytes += ev.bytes;
        conn.decoder->Feed(conn.recv_buffer.data(), ev.bytes);
      }
      PostRecv(conn);
      break;
    case EventType::kPeerClosed:
      conn.peer_closed = true;
      MaybeReap(socket, conn);
      break;
    case EventType::kError:
      break;
  }
}

void KvServer::OnRequest(Conn& conn, const MessageView& view) {
  if (view.header.type != MessageType::kRequest) {
    ++stats_.framing_errors;
    return;
  }
  ++counters_.requests_received;
  const std::string key = view.KeyString();
  Shard& shard = shards_[ShardOf(key)];
  ++shard_requests_[ShardOf(key)];
  const auto op = static_cast<Op>(view.header.op_or_status);
  const std::uint64_t id = view.header.correlation_id;
  switch (op) {
    case Op::kGet: {
      ++stats_.gets;
      auto it = shard.map.find(key);
      if (it == shard.map.end()) {
        ++stats_.misses;
        Respond(conn, id, Status::kNotFound, -1);
      } else {
        ++stats_.hits;
        Respond(conn, id, Status::kOk, it->second);
      }
      break;
    }
    case Op::kPut: {
      ++stats_.puts;
      if (view.header.value_len > slab_.slot_bytes()) {
        ++stats_.oversize_refusals;
        Respond(conn, id, Status::kRefused, -1);
        break;
      }
      const std::int32_t slot = slab_.Allocate();
      if (slot < 0) {
        ++stats_.slab_full_refusals;
        Respond(conn, id, Status::kRefused, -1);
        break;
      }
      std::memcpy(slab_.Data(slot), view.value, view.header.value_len);
      slab_.SetLength(slot, view.header.value_len);
      auto [it, inserted] = shard.map.emplace(key, slot);
      if (!inserted) {
        slab_.Release(it->second);  // overwrite: old slot frees (or zombies)
        it->second = slot;
      }
      Respond(conn, id, Status::kOk, -1);
      break;
    }
    case Op::kDel: {
      ++stats_.dels;
      auto it = shard.map.find(key);
      if (it == shard.map.end()) {
        ++stats_.misses;
        Respond(conn, id, Status::kNotFound, -1);
      } else {
        ++stats_.hits;
        slab_.Release(it->second);
        shard.map.erase(it);
        Respond(conn, id, Status::kOk, -1);
      }
      break;
    }
    default:
      ++stats_.framing_errors;
      break;
  }
}

void KvServer::Respond(Conn& conn, std::uint64_t correlation_id, Status status,
                       std::int32_t value_slot) {
  if (conn.closed) return;  // teardown raced a late request; nothing to do
  MessageHeader h;
  h.type = MessageType::kResponse;
  h.op_or_status = static_cast<std::uint8_t>(status);
  h.key_len = 0;
  h.value_len = value_slot >= 0 ? slab_.Length(value_slot) : 0;
  h.correlation_id = correlation_id;

  ++counters_.responses_sent;
  if (status == Status::kRefused) {
    ++counters_.refused;
  } else {
    ++counters_.answered;
  }
  stats_.response_bytes += kHeaderBytes + h.value_len;

  PendingSend send;
  std::uint64_t send_id = 0;
  if (value_slot >= 0 && options_.sendv_responses) {
    // Gather header + slab slot in one Sendv: no host copy of the value,
    // one completion.  The slot stays pinned until that completion.
    send.data.resize(kHeaderBytes);
    EncodeHeader(h, send.data.data());
    slab_.Pin(value_slot);
    send.pinned_slot = value_slot;
    Socket::IoSlice iov[2] = {
        {send.data.data(), kHeaderBytes},
        {slab_.Data(value_slot), h.value_len},
    };
    ++stats_.sendv_responses;
    send_id = conn.socket->Sendv(iov, h.value_len != 0 ? 2u : 1u);
  } else {
    send.data.resize(kHeaderBytes + h.value_len);
    EncodeHeader(h, send.data.data());
    if (value_slot >= 0 && h.value_len != 0) {
      std::memcpy(send.data.data() + kHeaderBytes, slab_.Data(value_slot),
                  h.value_len);
    }
    send_id = conn.socket->Send(send.data.data(), send.data.size());
  }
  conn.sends.emplace(send_id, std::move(send));
}

void KvServer::PostRecv(Conn& conn) {
  if (conn.recv_outstanding || conn.peer_closed || conn.closed) return;
  conn.recv_outstanding = true;
  conn.socket->Recv(conn.recv_buffer.data(), conn.recv_buffer.size());
}

void KvServer::MaybeReap(Socket& socket, Conn& conn) {
  // Once the peer closed and every response flushed, close our sending
  // side (the peer sees end-of-stream) and drop the connection state.
  if (!conn.peer_closed || !conn.sends.empty() || conn.closed) return;
  conn.closed = true;
  if (!socket.CloseRequested()) socket.Close();
  ++stats_.connections_closed;
  conns_.erase(&socket);
}

}  // namespace exs::rpc
