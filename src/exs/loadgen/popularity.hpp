// Key-popularity and value-size distributions for the traffic generator.
//
// The Zipf sampler is the Gray et al. transform (the YCSB
// ZipfianGenerator lineage): an O(n) zeta precompute at construction,
// then O(1) draws mapping one uniform variate to a rank — rank 0 is the
// hottest key.  All arithmetic is double-precision with a fixed
// evaluation order, so fixed seeds reproduce identical sample trains
// across platforms (pinned in tests/loadgen_test.cpp).
#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace exs::loadgen {

class ZipfSampler {
 public:
  /// `n` keys ranked 0..n-1, skew `theta` in [0, 1) — 0 is uniform,
  /// 0.99 is the YCSB default hot-key skew.
  ZipfSampler(std::uint64_t n, double theta);

  /// Draw a rank in [0, n).
  std::uint64_t Sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }
  /// Expected probability of the hottest key (rank 0).
  double TopProbability() const { return 1.0 / zetan_; }

 private:
  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
};

/// Discrete value-size mix: weighted size classes, sampled by cumulative
/// weight.  Deterministic for fixed seeds like everything else here.
class SizeMix {
 public:
  struct Class {
    std::uint32_t bytes = 0;
    double weight = 0.0;
  };

  explicit SizeMix(std::vector<Class> classes);

  std::uint32_t Sample(Rng& rng) const;

  double MeanBytes() const;
  std::uint32_t MaxBytes() const;
  const std::vector<Class>& classes() const { return classes_; }

 private:
  std::vector<Class> classes_;
  std::vector<double> cumulative_;  ///< normalised running weight
};

}  // namespace exs::loadgen
