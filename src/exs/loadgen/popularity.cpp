#include "exs/loadgen/popularity.hpp"

namespace exs::loadgen {

namespace {

double Zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta) {
  zetan_ = Zeta(n_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  const double zeta2 = Zeta(2 < n_ ? 2 : n_, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

std::uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

SizeMix::SizeMix(std::vector<Class> classes) : classes_(std::move(classes)) {
  if (classes_.empty()) classes_.push_back({1, 1.0});
  double total = 0.0;
  for (const Class& c : classes_) total += c.weight;
  double running = 0.0;
  cumulative_.reserve(classes_.size());
  for (const Class& c : classes_) {
    running += c.weight / total;
    cumulative_.push_back(running);
  }
  cumulative_.back() = 1.0;  // absorb rounding: the last class is a catch-all
}

std::uint32_t SizeMix::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  for (std::size_t i = 0; i < cumulative_.size(); ++i) {
    if (u < cumulative_[i]) return classes_[i].bytes;
  }
  return classes_.back().bytes;
}

double SizeMix::MeanBytes() const {
  double total = 0.0;
  double weighted = 0.0;
  for (const Class& c : classes_) {
    total += c.weight;
    weighted += c.weight * static_cast<double>(c.bytes);
  }
  return weighted / total;
}

std::uint32_t SizeMix::MaxBytes() const {
  std::uint32_t max = 0;
  for (const Class& c : classes_) {
    if (c.bytes > max) max = c.bytes;
  }
  return max;
}

}  // namespace exs::loadgen
