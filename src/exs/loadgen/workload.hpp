// Per-client KV workload composition: op mix x Zipf keys x value-size
// mix, drawn from one domain-separated Rng per client.
//
// The torture harness and the open-loop bench share this so "the
// workload" means the same thing in both: a fixed (seed, client) pair
// yields the identical request train, independent of the transport or
// the arrival process pacing it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "exs/loadgen/popularity.hpp"
#include "exs/rpc/framing.hpp"

namespace exs::loadgen {

struct WorkloadOptions {
  std::uint64_t key_space = 4096;
  double zipf_theta = 0.99;
  double get_fraction = 0.70;
  double put_fraction = 0.25;  ///< remainder is DEL
  /// Value sizes for PUTs; defaults mirror a small-object cache mix.
  std::vector<SizeMix::Class> size_classes = {
      {64, 6.0}, {256, 3.0}, {480, 1.0}};
};

class WorkloadGenerator {
 public:
  struct Request {
    rpc::Op op = rpc::Op::kGet;
    std::string key;
    std::uint32_t value_len = 0;  ///< 0 except for PUT
  };

  /// The generator owns its Rng, seeded by the caller (domain-separate
  /// per client: SplitMix64(seed ^ client_tag).Next()).
  WorkloadGenerator(const WorkloadOptions& options, std::uint64_t seed);

  Request Next();

  /// Deterministic fill for a PUT value: byte i of `key`'s value is a
  /// pure function of (key hash, i), so any reader can verify content.
  static void FillValue(const std::string& key, std::uint8_t* out,
                        std::uint32_t len);

  const ZipfSampler& zipf() const { return zipf_; }

 private:
  WorkloadOptions options_;
  Rng rng_;
  ZipfSampler zipf_;
  SizeMix sizes_;
};

}  // namespace exs::loadgen
