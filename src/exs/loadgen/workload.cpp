#include "exs/loadgen/workload.hpp"

namespace exs::loadgen {

WorkloadGenerator::WorkloadGenerator(const WorkloadOptions& options,
                                     std::uint64_t seed)
    : options_(options),
      rng_(seed),
      zipf_(options.key_space, options.zipf_theta),
      sizes_(options.size_classes) {}

WorkloadGenerator::Request WorkloadGenerator::Next() {
  Request r;
  const std::uint64_t rank = zipf_.Sample(rng_);
  r.key = "k" + std::to_string(rank);
  const double u = rng_.NextDouble();
  if (u < options_.get_fraction) {
    r.op = rpc::Op::kGet;
  } else if (u < options_.get_fraction + options_.put_fraction) {
    r.op = rpc::Op::kPut;
    r.value_len = sizes_.Sample(rng_);
  } else {
    r.op = rpc::Op::kDel;
  }
  return r;
}

void WorkloadGenerator::FillValue(const std::string& key, std::uint8_t* out,
                                  std::uint32_t len) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) h = (h ^ c) * 0x100000001b3ULL;
  SplitMix64 sm(h);
  std::uint64_t word = 0;
  for (std::uint32_t i = 0; i < len; ++i) {
    if (i % 8 == 0) word = sm.Next();
    out[i] = static_cast<std::uint8_t>(word >> (8 * (i % 8)));
  }
}

}  // namespace exs::loadgen
