// Open-loop arrival processes for the traffic generator.
//
// Open-loop means request times come from the *process*, not from
// completions: a slow server does not slow the generator down, it grows
// the outstanding window — which is exactly the backpressure regime the
// closed-loop blast benches can never produce.  Both processes are pure
// functions of an Rng, so a fixed seed replays the identical arrival
// train on any platform (goldens in tests/loadgen_test.cpp pin that).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace exs::loadgen {

/// Poisson arrivals: independent exponential inter-arrival gaps with the
/// configured mean.
class PoissonProcess {
 public:
  explicit PoissonProcess(SimDuration mean_interarrival)
      : mean_(static_cast<double>(mean_interarrival)) {}

  /// Gap to the next arrival (>= 1 ps: the simulator clock is integral
  /// and a zero gap would merge arrivals).
  SimDuration Next(Rng& rng) {
    const double gap = rng.NextExponential(mean_);
    return gap < 1.0 ? 1 : static_cast<SimDuration>(gap);
  }

  SimDuration mean_interarrival() const {
    return static_cast<SimDuration>(mean_);
  }

 private:
  double mean_;
};

/// Bursty on/off (interrupted-Poisson) arrivals: during an ON period
/// requests arrive at `burst_interarrival` mean spacing; each arrival
/// ends the ON period with probability 1/mean_burst_size, after which an
/// exponential OFF gap of mean `mean_off` passes in silence.  The train
/// starts at the beginning of an ON period.
class OnOffBurstProcess {
 public:
  struct Options {
    SimDuration burst_interarrival = Microseconds(1);
    double mean_burst_size = 16.0;  ///< geometric burst length, >= 1
    SimDuration mean_off = Milliseconds(1);
  };

  explicit OnOffBurstProcess(Options options) : options_(options) {
    if (options_.mean_burst_size < 1.0) options_.mean_burst_size = 1.0;
  }

  /// Gap to the next arrival; folds in an OFF period when the previous
  /// arrival closed its burst.
  SimDuration Next(Rng& rng) {
    double gap = rng.NextExponential(
        static_cast<double>(options_.burst_interarrival));
    if (off_pending_) {
      gap += rng.NextExponential(static_cast<double>(options_.mean_off));
      ++bursts_started_;
    }
    // Decide now whether *this* arrival closes the burst, so one Rng draw
    // sequence fully determines the train.
    off_pending_ = rng.NextBool(1.0 / options_.mean_burst_size);
    return gap < 1.0 ? 1 : static_cast<SimDuration>(gap);
  }

  bool in_off_gap() const { return off_pending_; }
  std::uint64_t bursts_started() const { return bursts_started_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  bool off_pending_ = false;
  std::uint64_t bursts_started_ = 1;  ///< the train opens in a burst
};

}  // namespace exs::loadgen
