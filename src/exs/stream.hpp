// The dynamic stream protocol (the paper's core contribution).
//
// A full-duplex stream socket instantiates one StreamTx (the paper's
// "sender": Fig. 2) for its outgoing byte stream and one StreamRx (the
// paper's "receiver": Figs. 3–5) for its incoming stream.  Both keep the
// phase/sequence machinery that lets the connection switch between
//
//   direct transfers   — WWI straight into user memory named by an ADVERT,
//   indirect transfers — WWI into the hidden circular intermediate buffer,
//
// without ever matching a direct transfer to the wrong memory (Theorem 1).
// Phase numbers are even in direct phases and odd in indirect phases and
// only ever advance; ADVERT sequence numbers are estimates except for the
// first ADVERT of a new direct phase, which is exact because the receiver
// holds ADVERTs back until its buffer is empty and every receive from the
// previous phase has been satisfied (the Fig. 7 rule).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/spans.hpp"
#include "common/units.hpp"
#include "simnet/event_scheduler.hpp"
#include "exs/channel.hpp"
#include "exs/event_queue.hpp"
#include "exs/instruments.hpp"
#include "exs/trace.hpp"
#include "exs/types.hpp"
#include "exs/wire.hpp"

namespace exs {

/// Externally provided backing for the receiver's hidden circular buffer.
/// Engine-managed sockets draw their ring from a shared BufferPool slab
/// (one registration covers the whole pool) instead of allocating
/// per-stream memory; Release() hands the carve back to the pool.  A
/// default-constructed lease means "allocate privately" — the classic
/// path, byte-for-byte unchanged.
///
/// Move-only RAII: the destructor releases an unreleased lease, so a
/// socket torn down before EOF+drain (aborted connection, server churn)
/// can never strand its carve and shrink the pool.  The release closure
/// carries the pool's liveness guard, making Release() a no-op once the
/// pool itself is gone (accepted sockets routinely outlive the acceptor).
class RingLease {
 public:
  RingLease() = default;
  RingLease(std::uint8_t* mem, std::uint64_t bytes, verbs::MemoryRegionPtr mr,
            std::function<void()> release)
      : mem_(mem), bytes_(bytes), mr_(std::move(mr)),
        release_(std::move(release)) {}
  RingLease(const RingLease&) = delete;
  RingLease& operator=(const RingLease&) = delete;
  RingLease(RingLease&& other) noexcept { *this = std::move(other); }
  RingLease& operator=(RingLease&& other) noexcept {
    if (this != &other) {
      Release();
      mem_ = other.mem_;
      bytes_ = other.bytes_;
      mr_ = std::move(other.mr_);
      release_ = std::move(other.release_);
      other.mem_ = nullptr;
      other.bytes_ = 0;
      other.mr_ = nullptr;
      other.release_ = nullptr;
    }
    return *this;
  }
  ~RingLease() { Release(); }

  /// Hand the carve back to the pool.  Idempotent, and a guarded no-op
  /// when there is no lease or the pool has already been destroyed.
  void Release() {
    if (!release_) return;
    auto release = std::move(release_);
    release_ = nullptr;
    release();
  }

  bool valid() const { return mem_ != nullptr && bytes_ > 0; }
  /// True while the carve is still owed to a pool (false for a private
  /// ring and after Release()).
  bool HasRelease() const { return static_cast<bool>(release_); }
  std::uint8_t* mem() const { return mem_; }
  std::uint64_t bytes() const { return bytes_; }
  const verbs::MemoryRegionPtr& mr() const { return mr_; }

 private:
  std::uint8_t* mem_ = nullptr;
  std::uint64_t bytes_ = 0;
  verbs::MemoryRegionPtr mr_;  ///< pool-wide registration covering `mem_`
  std::function<void()> release_;
};

/// Shared wiring handed to both halves by the socket.
struct StreamContext {
  ChannelEndpoint* channel = nullptr;
  simnet::EventScheduler* scheduler = nullptr;
  simnet::Cpu* cpu = nullptr;
  EventQueue* events = nullptr;
  SocketInstruments* metrics = nullptr;
  TraceLog* trace = nullptr;
  StreamOptions options;
  Bandwidth memcpy_bandwidth;
  bool carry_payload = true;
  std::string debug_name;
  /// When valid, the receiver ring lives here instead of a private
  /// allocation (its size overrides options.intermediate_buffer_bytes).
  RingLease ring_lease;
};

// ---------------------------------------------------------------------------
// Sender half (Fig. 2)
// ---------------------------------------------------------------------------

class StreamTx {
 public:
  explicit StreamTx(StreamContext ctx) : ctx_(std::move(ctx)) {}
  ~StreamTx() {
    // Both timers capture `this`; a socket torn down with events still
    // queued must not leave them armed.
    flush_timer_.Cancel();
    doorbell_flush_.Cancel();
  }

  /// Learn where the peer's intermediate buffer lives (exchanged at
  /// connection establishment).
  void SetRemoteRing(std::uint64_t addr, std::uint32_t rkey,
                     std::uint64_t capacity);

  /// Attach the connection's data rails (index 0 is the control channel
  /// itself).  Called at establishment when the negotiated rail count
  /// exceeds one; a classic single-rail connection never calls this and
  /// posts everything on the control channel, exactly as before.
  void SetDataRails(std::vector<ChannelEndpoint*> rails);

  /// Attach causal chunk tracing (common/spans.hpp).  Every WWI this
  /// sender posts becomes a (possibly sampled-out) chunk record stamped
  /// with its staging/queue/post times; `endpoint` identifies this half in
  /// the collector's endpoint table.  Never schedules events or charges
  /// CPU, so attaching cannot change timing.
  void SetSpanCollector(spans::SpanCollector* collector,
                        std::uint64_t endpoint) {
    spans_ = collector;
    span_endpoint_ = endpoint;
  }

  /// Queue a send request.  `lkey` names the registered region covering
  /// [buf, buf+len).  Completion is reported on the event queue once every
  /// chunk has been transferred and locally completed.
  void Submit(std::uint64_t id, const void* buf, std::uint64_t len,
              std::uint32_t lkey);

  /// Queue a vectored send: one logical send (one id, one completion)
  /// whose payload is gathered from `n` registered slices.  The slices ride
  /// the wire as multi-SGE work requests — no staging copy — with chunks
  /// clipped so no single WR needs more than verbs::kMaxSge gather entries.
  /// Slice buffers must stay valid until the send completes, exactly like
  /// Submit's.  With recovery on, the slices are snapshotted into an owned
  /// contiguous log record instead (retransmission needs the bytes anyway).
  /// `pins` are registration-cache pins covering the slices; they are
  /// released (Device::UnpinCached) when the send completes.
  void SubmitV(std::uint64_t id, const SendSlice* slices, std::uint32_t n,
               std::vector<verbs::MemoryRegionPtr> pins = {});

  void OnAdvert(const wire::ControlMessage& msg);
  /// `delivered` is the receiver's delivered-byte frontier piggybacked on
  /// the ACK (always 0 when recovery is off).
  void OnAck(std::uint64_t freed, std::uint64_t delivered = 0);
  void OnCreditAvailable() { Pump(); }
  /// A data WWI completed locally on `rail` (0 = the control channel).
  void OnWwiComplete(std::uint64_t wr_id, std::size_t rail = 0);

  /// Orderly close of this direction: staged bytes flush, then a SHUTDOWN
  /// control message goes out after every queued send has been fully
  /// transferred; no further sends are accepted.
  void RequestShutdown();
  bool ShutdownRequested() const { return shutdown_requested_; }

  // ---- Fatal-fault recovery (StreamOptions::recovery) --------------------

  /// The transport died under this half: record the kill in the trace so
  /// the validators switch to their resume-aware rules.
  void NoteTransportKilled() { Trace(TraceEventType::kTransportKilled); }

  /// Everything the sender needs to re-synchronise at the receiver's
  /// *delivered* frontier — not its own completed-WR boundary, which
  /// Borrill's "completion fallacy" shows may lie beyond what ever arrived.
  /// Assembled by Socket::ResumePair from the peer receiver's state.
  struct ResumeInfo {
    std::uint64_t delivered = 0;   ///< receiver's delivered-byte frontier F
    std::uint64_t ring_write = 0;  ///< receiver's authoritative ring cursors
    std::uint64_t ring_read = 0;
    std::uint64_t ring_used = 0;
    std::uint64_t resume_phase = 0;  ///< common odd phase both halves adopt
    bool peer_closed = false;  ///< receiver already consumed our SHUTDOWN
    /// Surviving rails (empty = single-rail); rail 0 must be the control
    /// channel.  Rail failover hands in a shorter list than pre-kill.
    std::vector<ChannelEndpoint*> rails;
  };

  /// Rewind to the delivered frontier and rebuild the chunk queue from the
  /// retransmission log: records wholly below F complete (their events may
  /// never have been raised — the kill flushed the WR completions), records
  /// straddling or beyond F are re-queued for retransmission from their
  /// snapshot.  State only; the socket kicks Pump() once both directions
  /// have resumed.
  void ResumeTx(const ResumeInfo& info);

  /// Recovery introspection.
  std::uint64_t PeerDelivered() const { return peer_delivered_; }
  std::size_t RetransmitLogDepth() const { return sent_log_.size(); }

  // Introspection for tests and invariant checks.
  std::uint64_t phase() const { return phase_; }
  std::uint64_t sequence() const { return seq_; }
  std::size_t PendingSends() const { return inflight_.size() + staged_.size(); }
  std::size_t AdvertQueueDepth() const { return advert_queue_.size(); }
  std::uint64_t RemoteRingFree() const { return remote_ring_.free(); }
  std::size_t StagedSends() const { return staged_.size(); }
  std::uint64_t StagedBytes() const { return staged_bytes_; }
  bool Quiescent() const { return inflight_.empty() && staged_.empty(); }
  std::size_t RailCount() const { return rails_.empty() ? 1 : rails_.size(); }
  std::uint64_t NextStripeSeq() const { return stripe_seq_; }
  std::uint64_t RailOutstandingBytes(std::size_t rail) const {
    return rail_outstanding_[rail];
  }

  /// One WWI's worth of a pending send: what remains of the message,
  /// clipped to the destination room (ADVERT remainder or contiguous ring
  /// space) and the negotiated chunk cap.  Shared by the direct and
  /// indirect paths so the §II-C chunking rule has exactly one home.
  static std::uint64_t NextChunkLen(std::uint64_t remaining,
                                    std::uint64_t room,
                                    std::uint64_t max_chunk) {
    std::uint64_t len = remaining;
    if (room < len) len = room;
    if (max_chunk < len) len = max_chunk;
    return len;
  }

 private:
  /// One member of a coalesced aggregate: a small send that was merged.
  /// `base`/`lkey` name the member's original buffer — used only by sendv
  /// aggregation (Batching::sendv_aggregation), where the flush gathers
  /// members by reference instead of from a staging copy.
  struct StagedSend {
    std::uint64_t id = 0;
    std::uint64_t len = 0;
    const std::uint8_t* base = nullptr;
    std::uint32_t lkey = 0;
  };

  struct PendingSend {
    std::uint64_t id = 0;
    const std::uint8_t* base = nullptr;
    std::uint64_t len = 0;
    std::uint64_t sent = 0;
    std::uint32_t lkey = 0;
    std::uint32_t wwis_outstanding = 0;
    bool fully_chunked = false;
    /// Recovery bookkeeping: offset of this record's first byte in the
    /// outgoing stream (assigned when it joins the chunk queue), and
    /// whether its application event already went out — a record can be
    /// retransmitted after a kill without re-raising its completion.
    std::uint64_t stream_off = 0;
    bool completion_reported = false;
    /// Span provenance: when the application submitted the bytes and when
    /// they left the coalescing stage (== submit_time unless staged).
    SimTime submit_time = 0;
    SimTime flush_time = 0;
    bool coalesced = false;
    /// Coalesced aggregate only: the merged payload (base points into it)
    /// and the member sends, completed individually in submission order
    /// once every chunk of the aggregate has transferred.
    std::vector<std::uint8_t> owned;
    verbs::MemoryRegionPtr owned_mr;
    std::vector<StagedSend> members;
    /// Vectored payload (SubmitV, or sendv-aggregated coalescing): the
    /// record's bytes live in these slices instead of [base, base+len).
    /// Empty = classic contiguous record.
    std::vector<SendSlice> slices;
    /// Registration-cache pins taken for this record's slices, dropped
    /// (verbs::Device::UnpinCached) when the send completes.
    std::vector<verbs::MemoryRegionPtr> pinned;
  };

  /// A received ADVERT queued at the sender (the paper's q_A).
  struct Advert {
    std::uint64_t addr = 0;
    std::uint32_t rkey = 0;
    std::uint64_t len = 0;
    std::uint64_t filled = 0;
    std::uint64_t seq = 0;
    std::uint64_t phase = 0;
    bool waitall = false;
  };

  /// The matching loop of Fig. 2: emit chunks while an ADVERT or buffer
  /// space and a credit are available; otherwise wait for the event that
  /// unblocks us (ADVERT, ACK, or credit return).  Pump wraps the loop so
  /// every exit path rings pending doorbells (Batching::doorbell defers
  /// posts until here); the loop body itself lives in PumpChunks.
  void Pump();
  void PumpChunks();
  void PostDirect(PendingSend& s, Advert& advert, std::uint64_t len,
                  std::size_t rail);
  void PostIndirect(PendingSend& s, std::uint64_t len, std::size_t rail);
  /// Post one chunk of `s` — [s.sent, s.sent+len) — as a WWI on `rail`,
  /// contiguous or gathered from the record's slice list.
  void PostWwiChunk(PendingSend& s, std::uint64_t len,
                    std::uint64_t remote_addr, std::uint32_t rkey,
                    bool indirect, std::size_t rail, std::uint64_t trace_ctx);
  /// Sendv aggregation active?  Requires coalescing and is suspended while
  /// recovery is on (the retransmission log needs owned snapshots).
  bool AggregationOn() const {
    return ctx_.options.batching.sendv_aggregation &&
           ctx_.options.coalesce.enabled && !RecoveryOn();
  }
  /// Clip a sliced record's chunk so one WR never needs more than
  /// verbs::kMaxSge gather entries.  Identity for contiguous records.
  std::uint64_t ClipChunkToSges(const PendingSend& s, std::uint64_t len) const;
  /// Build the gather window [off, off+len) of a sliced record into `out`
  /// (capacity verbs::kMaxSge — guaranteed to fit by ClipChunkToSges).
  /// Returns the entry count; zero-length slices contribute nothing.
  std::uint32_t BuildSliceWindow(const PendingSend& s, std::uint64_t off,
                                 std::uint64_t len, SendSlice* out) const;
  void NoteTransfer(bool indirect);
  bool Striping() const { return rails_.size() > 1; }
  ChannelEndpoint* Rail(std::size_t rail) {
    return rails_.empty() ? ctx_.channel : rails_[rail];
  }
  /// Rail the next chunk rides, per options.rail_scheduler, considering
  /// only rails with a send credit; kNoRail when every rail is blocked
  /// (the post is retried from on_credit_available).  With one rail this
  /// degenerates to the classic CanSend() gate.
  static constexpr std::size_t kNoRail = ~std::size_t{0};
  std::size_t PickRail() const;
  /// Per-rail outstanding-byte accounting at post time; also advances the
  /// stripe sequence and the round-robin cursor.
  void NoteStripePosted(std::size_t rail, std::uint64_t len);
  /// Coalescing: is this send small enough — and the connection in a state
  /// where holding it back cannot delay a direct transfer?
  bool ShouldStage(std::uint64_t len) const;
  /// Append a small send to the staging buffer (flushing first if it would
  /// not fit), arming the max_delay timer on the first staged byte.  Under
  /// sendv aggregation the bytes are recorded by reference — no memcpy.
  void StageCoalesced(std::uint64_t id, const void* buf, std::uint64_t len,
                      std::uint32_t lkey);
  /// Merge every staged send into one aggregate PendingSend at the back of
  /// the chunk queue.  Only appends — safe to call from inside Pump; all
  /// other callers run Pump() afterwards.
  void FlushCoalesced(CoalesceFlushReason reason);
  /// Report completion: one event per member for a coalesced aggregate (in
  /// submission order), else a single event.  Takes the record by value —
  /// it erases the inflight_ entry that may be the last other owner.
  void CompleteSend(std::shared_ptr<PendingSend> rec);
  /// Advance P_s, recording how long we dwelt in the phase being left and
  /// tracing the change (phase dwell histograms are keyed by the *old*
  /// phase's parity).
  void AdvancePhaseTo(std::uint64_t phase);
  void NoteWwisInFlight(std::int64_t delta);
  void Trace(TraceEventType type, std::uint64_t len = 0,
             std::uint64_t msg_seq = 0, std::uint64_t msg_phase = 0) {
    if (ctx_.trace != nullptr && ctx_.trace->enabled()) {
      ctx_.trace->Record(TraceEvent{ctx_.scheduler->Now(), type, seq_,
                                    phase_, len, msg_seq, msg_phase});
    }
  }
  std::uint64_t MaxChunk() const {
    std::uint64_t cap = ctx_.options.max_wwi_chunk;
    return cap == 0 ? wire::kMaxWwiChunk
                    : (cap < wire::kMaxWwiChunk ? cap : wire::kMaxWwiChunk);
  }
  bool RecoveryOn() const { return ctx_.options.recovery.enabled; }
  /// Recovery: a record is joining the chunk queue — stamp its stream
  /// offset and append it to the retransmission log.
  void NoteQueued(const std::shared_ptr<PendingSend>& rec);
  /// Recovery: the peer reported its delivered frontier; prune the log.
  void NoteDelivered(std::uint64_t delivered);
  StreamContext ctx_;
  std::uint64_t phase_ = 0;  ///< P_s
  std::uint64_t seq_ = 0;    ///< S_s
  SimTime phase_start_ = 0;  ///< when P_s last changed (dwell accounting)
  std::uint64_t wwis_in_flight_ = 0;  ///< posted, not yet locally complete
  RingCursor remote_ring_;   ///< sender's view of the remote buffer (b_s)
  std::uint64_t remote_ring_addr_ = 0;
  std::uint32_t remote_ring_rkey_ = 0;
  std::deque<Advert> advert_queue_;                        ///< q_A
  std::deque<std::shared_ptr<PendingSend>> chunk_queue_;   ///< not fully sent
  std::unordered_map<std::uint64_t, std::shared_ptr<PendingSend>> inflight_;
  // Recovery (all dormant while !RecoveryOn()).  The retransmission log
  // holds every queued record, payload snapshotted at Submit, until the
  // receiver's delivered frontier passes it *and* its completion event has
  // been raised (a delivered record's local WR completion can still be in
  // flight — or flushed by a kill — when the frontier report arrives).
  std::uint64_t next_stream_off_ = 0;   ///< stream offset of the next queue
  std::uint64_t peer_delivered_ = 0;    ///< frontier last reported by peer
  std::deque<std::shared_ptr<PendingSend>> sent_log_;
  bool last_transfer_indirect_ = false;  ///< connections begin direct
  bool shutdown_requested_ = false;
  bool shutdown_sent_ = false;
  // Multi-rail striping state (empty rails_ = classic single-rail mode).
  // Completions on one rail return in post order (RC FIFO per QP), so a
  // per-rail deque of posted chunk lengths is enough to account
  // outstanding bytes for the shortest-outstanding scheduler.
  std::vector<ChannelEndpoint*> rails_;
  std::uint64_t stripe_seq_ = 0;        ///< next delivery sequence number
  std::size_t next_rail_ = 0;           ///< round-robin cursor
  std::vector<std::uint64_t> rail_outstanding_ = {0};  ///< bytes in flight
  std::vector<std::deque<std::uint64_t>> rail_fifo_;   ///< chunk lens, FIFO
  // Causal chunk tracing (null = off).  Completions on one rail return in
  // post order, so a per-rail FIFO of chunk trace ids (0 = unsampled)
  // pairs each WR completion with its record.
  spans::SpanCollector* spans_ = nullptr;
  std::uint64_t span_endpoint_ = 0;
  std::vector<std::deque<std::uint64_t>> span_tx_fifo_;
  /// Submit time of the oldest send in the staging buffer (aggregate
  /// provenance: a coalesced chunk's staging span starts here).
  SimTime staged_first_time_ = 0;
  // Coalescing staging buffer.  Logically ordered *after* chunk_queue_:
  // a flush appends the merged aggregate at the queue's back, so byte
  // continuity is preserved by construction.
  std::vector<std::uint8_t> staging_mem_;
  verbs::MemoryRegionPtr staging_mr_;
  std::vector<StagedSend> staged_;
  std::uint64_t staged_bytes_ = 0;
  simnet::EventHandle flush_timer_;
  /// Deferred doorbell ring (Batching::doorbell): a zero-delay event that
  /// flushes every rail's pending batch after all pump passes of the
  /// current simulated instant have appended their chunks.
  simnet::EventHandle doorbell_flush_;
};

// ---------------------------------------------------------------------------
// Receiver half (Figs. 3, 4, 5)
// ---------------------------------------------------------------------------

class StreamRx {
 public:
  explicit StreamRx(StreamContext ctx);

  std::uint64_t ring_addr() const;
  std::uint32_t ring_rkey() const { return ring_mr_->rkey(); }
  std::uint64_t ring_capacity() const { return ring_.capacity(); }

  /// Queue a receive request for user memory [buf, buf+len) registered
  /// under `rkey`/`base` (the ADVERT must name remotely writable memory).
  void Submit(std::uint64_t id, void* buf, std::uint64_t len,
              std::uint32_t rkey, bool waitall);

  /// Striping was negotiated: expect every arrival to carry a stripe
  /// sequence number and reassemble in that order.  Called once at
  /// establishment, before any data moves.
  void SetStriping(std::uint32_t rails);

  /// A data WWI arrived (dispatched from the rail it rode; `rail` is only
  /// descriptive — payload placement happened at the verbs layer).  On a
  /// striped connection the chunk joins the reorder buffer and chunks are
  /// processed strictly in stripe-sequence order.
  void OnData(bool indirect, std::uint64_t len, bool has_stripe_seq = false,
              std::uint64_t stripe_seq = 0, std::size_t rail = 0,
              std::uint64_t trace_ctx = 0);
  void OnCreditAvailable();

  /// Attach causal chunk tracing; see StreamTx::SetSpanCollector.  The
  /// receiver closes each sampled chunk's reorder/ring/copy/delivery
  /// stages as the bytes move toward the application.
  void SetSpanCollector(spans::SpanCollector* collector,
                        std::uint64_t endpoint) {
    spans_ = collector;
    span_endpoint_ = endpoint;
  }

  /// Attach per-rail head-of-line-blocking histograms (`rail<i>.hol_wait`
  /// in the socket registry): the time each arriving chunk spent parked in
  /// the stripe reorder buffer behind an earlier-sequence chunk, recorded
  /// against the rail it arrived on.  Entries may be null; the vector may
  /// be shorter than the rail count.
  void SetRailHolInstruments(std::vector<metrics::Histogram*> hol) {
    rail_hol_ = std::move(hol);
  }

  /// The peer closed its sending direction.  In-order delivery puts the
  /// SHUTDOWN behind all of the stream's data; once the intermediate
  /// buffer drains, outstanding receives complete with what they hold and
  /// a kPeerClosed event is raised.  Receives submitted afterwards
  /// complete immediately with zero bytes.
  void OnShutdown();
  bool PeerClosed() const { return peer_closed_; }

  /// Hand a leased ring back to its pool once it can never be written
  /// again: EOF delivered and every buffered byte copied out.  Called
  /// automatically at EOF; the engine may also call it when reaping.
  /// Returns true when the lease was released (now or earlier); false
  /// while the ring is still live or when there is no lease.
  bool TryReleaseRing();
  bool RingReleased() const { return ring_released_; }

  // ---- Fatal-fault recovery (StreamOptions::recovery) --------------------

  /// See StreamTx::NoteTransportKilled.
  void NoteTransportKilled() { Trace(TraceEventType::kTransportKilled); }

  /// The contiguous stream prefix this receiver has taken into custody:
  /// bytes placed for the application plus bytes buffered in order in the
  /// ring (ring contents are receiver memory and survive a transport
  /// kill).  This — not the sender's completed-WR count — is where the
  /// resume handshake re-synchronises.
  std::uint64_t DeliveredFrontier() const { return seq_ + ring_.used(); }
  std::uint64_t RingWriteOffset() const { return ring_.write_offset(); }
  std::uint64_t RingReadOffset() const { return ring_.read_offset(); }

  /// Adopt the resume phase and forget everything the kill invalidated:
  /// parked striped chunks (dropped, the sender retransmits them), ADVERTs
  /// the peer never honoured (every pending receive reverts to
  /// un-advertised), un-flushed ACK counts (the sender adopts our cursors
  /// directly).  Re-advertises and resumes the ring drain, which restarts
  /// the stream from the delivered frontier.
  void ResumeRx(std::uint64_t resume_phase, std::uint32_t rails);

  // Introspection for tests and invariant checks.
  std::uint64_t phase() const { return phase_; }
  std::uint64_t sequence() const { return seq_; }          ///< S_r
  std::uint64_t sequence_estimate() const { return seq_est_; }  ///< S'_r
  std::uint64_t RingBytes() const { return ring_.used(); }
  std::size_t PendingRecvs() const { return pending_.size(); }
  bool Quiescent() const {
    return pending_.empty() && ring_.Empty() && stripe_reorder_.empty();
  }
  std::size_t StripeReorderDepth() const { return stripe_reorder_.size(); }
  std::uint64_t NextStripeSeq() const { return next_stripe_seq_; }

 private:
  struct PendingRecv {
    std::uint64_t id = 0;
    std::uint8_t* base = nullptr;
    std::uint64_t len = 0;
    std::uint64_t filled = 0;
    std::uint32_t rkey = 0;
    bool waitall = false;
    bool adverted = false;
    std::uint64_t advert_phase = 0;
    SimTime advert_time = 0;   ///< when this receive's ADVERT went out
    bool rtt_pending = false;  ///< awaiting the first direct byte back
  };

  /// A chunk notification parked until its stripe predecessors arrive.
  /// The payload already sits in its final location (rail choice never
  /// moves a byte); only the protocol bookkeeping waits.
  struct StripedChunk {
    bool indirect = false;
    std::uint64_t len = 0;
    std::size_t rail = 0;
    SimTime arrive_time = 0;      ///< for the HoL-blocking wait
    std::uint64_t trace_ctx = 0;  ///< span correlation id (0 = untraced)
  };

  /// The classic arrival handling of Fig. 4, factored out of OnData so
  /// striped chunks can be run through it in stripe-sequence order.
  void ProcessData(bool indirect, std::uint64_t len, bool striped,
                   std::uint64_t stripe_seq, std::size_t rail,
                   std::uint64_t trace_ctx);
  /// Fig. 3: advertise pending receives in order, gated on an empty
  /// intermediate buffer and no outstanding receives from a prior phase.
  void TryAdvertise();
  /// Fig. 5: copy buffered bytes into pending receives FIFO, charging the
  /// node CPU at memcpy bandwidth.
  void DrainRing();
  /// Coalescing: fold pending ACK free-counts into outgoing ADVERTs?
  bool PiggybackAcks() const {
    return ctx_.options.coalesce.enabled &&
           ctx_.options.coalesce.piggyback_acks;
  }
  bool RecoveryOn() const { return ctx_.options.recovery.enabled; }
  void MaybeSendAck();
  void CompleteFront();
  /// After the peer's SHUTDOWN, once every buffered byte has been copied
  /// out: complete the remaining receives and raise kPeerClosed.
  void MaybeFinishEof();
  /// Advance P_r, recording the dwell time of the phase being left (see
  /// StreamTx::AdvancePhaseTo).
  void AdvancePhaseTo(std::uint64_t phase);
  void Trace(TraceEventType type, std::uint64_t len = 0,
             std::uint64_t msg_seq = 0, std::uint64_t msg_phase = 0) {
    if (ctx_.trace != nullptr && ctx_.trace->enabled()) {
      ctx_.trace->Record(TraceEvent{ctx_.scheduler->Now(), type, seq_,
                                    phase_, len, msg_seq, msg_phase});
    }
  }

  StreamContext ctx_;
  std::uint64_t phase_ = 0;    ///< P_r
  std::uint64_t seq_ = 0;      ///< S_r
  std::uint64_t seq_est_ = 0;  ///< S'_r (next-expected used in ADVERTs)
  SimTime phase_start_ = 0;    ///< when P_r last changed (dwell accounting)
  std::vector<std::uint8_t> ring_mem_;  ///< empty when leased from a pool
  std::uint8_t* ring_base_ = nullptr;   ///< private or leased backing
  verbs::MemoryRegionPtr ring_mr_;
  bool ring_released_ = false;
  RingCursor ring_;            ///< b_r plus cursors
  std::deque<PendingRecv> pending_;
  std::uint64_t pending_ack_bytes_ = 0;
  bool copy_in_progress_ = false;
  bool peer_closed_ = false;
  bool eof_delivered_ = false;
  // Multi-rail reassembly (rails_ == 1 bypasses all of it).
  std::uint32_t rails_ = 1;
  std::uint64_t next_stripe_seq_ = 0;  ///< next delivery sequence expected
  std::map<std::uint64_t, StripedChunk> stripe_reorder_;

  // --- Causal chunk tracing (all dormant while spans_ is null) ----------
  /// Processing, ring copies and receive completions are each in stream
  /// order, so cumulative byte counters pair sampled chunks with the copy
  /// pass and receive completion that retire them — no per-byte state.
  void SpanNoteProcessed(std::uint64_t trace_ctx, bool indirect,
                         std::uint64_t len);
  /// A ring copy pass is starting that will consume `pass_bytes` from the
  /// front of the buffered (FIFO) ring bytes.
  void SpanNoteCopyPassStart(std::uint64_t pass_bytes);
  /// That pass finished (memcpy cost paid); `pass_bytes` left the ring.
  void SpanNoteCopyPassDone(std::uint64_t pass_bytes);
  /// A receive completion for `bytes` of stream payload was pushed.
  void SpanNoteDelivered(std::uint64_t bytes);
  void RecordHolWait(const StripedChunk& chunk);

  struct SpanDeliverWait {
    std::uint64_t id = 0;       ///< chunk trace id
    std::uint64_t end_off = 0;  ///< stream offset one past the chunk
  };
  struct SpanRingWait {
    std::uint64_t id = 0;
    std::uint64_t fill_start = 0;  ///< cumulative ring-fill offsets
    std::uint64_t fill_end = 0;
  };
  spans::SpanCollector* spans_ = nullptr;
  std::uint64_t span_endpoint_ = 0;
  std::uint64_t span_stream_off_ = 0;   ///< bytes processed in order
  std::uint64_t span_delivered_ = 0;    ///< bytes delivered to the app
  std::uint64_t span_ring_fill_ = 0;    ///< bytes ever written to the ring
  std::uint64_t span_ring_copied_ = 0;  ///< bytes ever copied out of it
  std::deque<SpanDeliverWait> span_deliver_wait_;
  std::deque<SpanRingWait> span_ring_wait_;
  std::vector<metrics::Histogram*> rail_hol_;  ///< per-rail HoL wait (ps)
};

}  // namespace exs
