// A two-node point-to-point testbed: the simulated equivalent of the
// paper's "two identical nodes connected through a switch".
//
// The Fabric owns the clock (EventScheduler), both hosts (each with a CPU
// resource) and the duplex link between them.  Higher layers — the verbs
// devices and the EXS sockets — borrow references from here.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "simnet/cpu.hpp"
#include "simnet/event_scheduler.hpp"
#include "simnet/link.hpp"
#include "simnet/profile.hpp"

namespace exs::simnet {

class Node {
 public:
  Node(EventScheduler& scheduler, std::string name)
      : name_(std::move(name)), cpu_(scheduler) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const { return name_; }
  Cpu& cpu() { return cpu_; }
  const Cpu& cpu() const { return cpu_; }

 private:
  std::string name_;
  Cpu cpu_;
};

class Fabric {
 public:
  explicit Fabric(HardwareProfile profile, std::uint64_t seed = 1)
      : seed_(seed),
        profile_(std::move(profile)),
        node0_(scheduler_, "node0"),
        node1_(scheduler_, "node1"),
        channel0_(scheduler_, MakeChannelConfig(profile_), seed * 2 + 1),
        channel1_(scheduler_, MakeChannelConfig(profile_), seed * 2 + 2) {
    node0_.cpu().SetJitter(profile_.cpu_jitter, seed * 4 + 3);
    node1_.cpu().SetJitter(profile_.cpu_jitter, seed * 4 + 4);
  }

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  EventScheduler& scheduler() { return scheduler_; }
  const HardwareProfile& profile() const { return profile_; }
  std::uint64_t seed() const { return seed_; }

  Node& node(std::size_t i) {
    EXS_CHECK(i < 2);
    return i == 0 ? node0_ : node1_;
  }

  /// Channel carrying traffic transmitted by node `from`.
  SimplexChannel& channel_from(std::size_t from) {
    EXS_CHECK(from < 2);
    return from == 0 ? channel0_ : channel1_;
  }

 private:
  static ChannelConfig MakeChannelConfig(const HardwareProfile& p) {
    ChannelConfig c;
    c.bandwidth = p.link_bandwidth;
    c.propagation = p.propagation;
    c.netem = p.netem;
    return c;
  }

  std::uint64_t seed_;
  HardwareProfile profile_;
  EventScheduler scheduler_;
  Node node0_;
  Node node1_;
  SimplexChannel channel0_;
  SimplexChannel channel1_;
};

}  // namespace exs::simnet
