// Discrete-event scheduler: the simulated clock and event queue that every
// other component (links, NICs, CPUs, protocol timers) runs on.
//
// Events scheduled for the same instant execute in scheduling order (a
// monotone sequence number breaks ties), which makes runs bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/sim_clock.hpp"
#include "common/units.hpp"

namespace exs::simnet {

class EventScheduler;

/// Cancellation handle for a scheduled event.  Default-constructed handles
/// are inert; cancelling an already-run or already-cancelled event is a
/// no-op.
class EventHandle {
 public:
  EventHandle() = default;

  void Cancel() {
    if (auto rec = record_.lock()) rec->cancelled = true;
    record_.reset();
  }

  /// True while the event is still scheduled to run.
  bool Pending() const {
    auto rec = record_.lock();
    return rec && !rec->cancelled && !rec->executed;
  }

 private:
  friend class EventScheduler;
  struct Record {
    SimTime when = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
    bool cancelled = false;
    bool executed = false;
  };
  explicit EventHandle(std::weak_ptr<Record> record)
      : record_(std::move(record)) {}
  std::weak_ptr<Record> record_;
};

class EventScheduler : public SimClock {
 public:
  SimTime Now() const override { return now_; }

  EventHandle ScheduleAt(SimTime when, std::function<void()> fn) {
    EXS_CHECK_MSG(when >= now_, "cannot schedule into the past");
    auto rec = std::make_shared<EventHandle::Record>();
    rec->when = when;
    rec->seq = next_seq_++;
    rec->fn = std::move(fn);
    queue_.push(rec);
    return EventHandle(rec);
  }

  EventHandle ScheduleAfter(SimDuration delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Run the next pending event.  Returns false when the queue is empty.
  bool Step() {
    while (!queue_.empty()) {
      auto rec = queue_.top();
      queue_.pop();
      if (rec->cancelled) continue;
      now_ = rec->when;
      rec->executed = true;
      ++executed_;
      // Move the callback out so the record does not pin captured state.
      auto fn = std::move(rec->fn);
      fn();
      return true;
    }
    return false;
  }

  /// Run until the event queue drains.
  void Run() {
    while (Step()) {
    }
  }

  /// Run events with time <= deadline; afterwards Now() == deadline unless
  /// the queue drained earlier.
  void RunUntil(SimTime deadline) {
    for (;;) {
      // Prune cancelled records first: a queue holding nothing else must
      // read as empty, not trip the non-empty check below.
      while (!queue_.empty() && queue_.top()->cancelled) queue_.pop();
      if (queue_.empty() || NextEventTime() > deadline) break;
      Step();
    }
    if (now_ < deadline) now_ = deadline;
  }

  void RunFor(SimDuration duration) { RunUntil(now_ + duration); }

  /// Run until `done()` returns true or the queue drains.  Returns whether
  /// the predicate was satisfied.
  bool RunUntilPredicate(const std::function<bool()>& done) {
    while (!done()) {
      if (!Step()) return done();
    }
    return true;
  }

  bool Empty() const { return PendingCount() == 0; }

  std::size_t PendingCount() const {
    // Cancelled events linger in the queue until popped; count live ones.
    // O(n), intended for tests and idle checks, not hot paths.
    std::size_t n = 0;
    auto copy = queue_;
    while (!copy.empty()) {
      if (!copy.top()->cancelled) ++n;
      copy.pop();
    }
    return n;
  }

  std::uint64_t ExecutedCount() const { return executed_; }

 private:
  SimTime NextEventTime() {
    while (!queue_.empty() && queue_.top()->cancelled) queue_.pop();
    EXS_CHECK(!queue_.empty());
    return queue_.top()->when;
  }

  struct Later {
    bool operator()(const std::shared_ptr<EventHandle::Record>& a,
                    const std::shared_ptr<EventHandle::Record>& b) const {
      if (a->when != b->when) return a->when > b->when;
      return a->seq > b->seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<std::shared_ptr<EventHandle::Record>,
                      std::vector<std::shared_ptr<EventHandle::Record>>, Later>
      queue_;
};

}  // namespace exs::simnet
