// Deterministic fault injection for the simulated fabric.
//
// The protocol's failure modes (Figs. 6 and 8 of the paper) arise under
// adversarial timing, not benign schedules: an ADVERT that crosses a phase
// flip, a receiver stalled mid-copy, a jitter spike during dynamic mode
// switching.  This subsystem perturbs those schedules *reproducibly*: a
// FaultPlan is generated from a single seed, armed on a Fabric by the
// FaultInjector, and every perturbation draws from plan-seeded RNG state —
// so a failing seed replays byte-for-byte.
//
// Fault taxonomy (see docs/FAULTS.md):
//   kLinkStall     — retransmission-delay burst: every message on one
//                    channel direction is delayed by a fixed amount for
//                    the window (a flapping link under RC retransmission).
//   kLinkJitter    — jitter spike: uniform extra delay per message for the
//                    window.  The channel's monotone delivery clamp keeps
//                    RC in-order semantics.
//   kCpuStall      — OS preemption: the node CPU runs a no-op task of the
//                    given length; everything queued behind it slips.
//   kSlowCopy      — throttled host window: all CPU task costs (above all
//                    the receiver's ring copy-out) scale by `factor`.
//   kControlDelay  — delivery hold: the endpoint's incoming completion
//                    dispatch (ADVERTs, ACKs, data notifications) is
//                    frozen for the window and then released strictly in
//                    arrival order — RC delivers in order, so a delayed
//                    ADVERT delays everything behind it too.
//   kQpKill        — fatal transport error: the endpoint's queue pairs
//                    enter the error state, in-flight WRs flush with error
//                    completions, and the peer dies one ack-delay later.
//                    Unlike every other kind this one is not transient —
//                    the connection stays down until something calls
//                    Socket::ResumePair.  A kill targeting an endpoint
//                    that is already dead (or not attached) is a no-op.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "simnet/fabric.hpp"

namespace exs::simnet {

enum class FaultKind : std::uint8_t {
  kLinkStall,
  kLinkJitter,
  kCpuStall,
  kSlowCopy,
  kControlDelay,
  // Appended so recorded plans keep their numeric values.
  kQpKill,
};

const char* ToString(FaultKind kind);

/// One scheduled perturbation.  `target` is a channel direction for link
/// faults (traffic transmitted by node `target`) and a node index for CPU
/// and control-delay faults.
struct FaultEvent {
  FaultKind kind = FaultKind::kLinkStall;
  std::size_t target = 0;
  SimTime at = 0;             ///< window open (or instant, for kCpuStall)
  SimDuration duration = 0;   ///< window length; unused by kCpuStall
  SimDuration magnitude = 0;  ///< delay / jitter bound / stall / hold length
  double factor = 1.0;        ///< kSlowCopy cost multiplier
};

/// Intensity knobs for FaultPlan::Generate.  Magnitudes default to zero
/// and are normally derived from the run's time horizon via ScaledTo(), so
/// one config works for a sub-millisecond FDR run and a multi-second WAN
/// run alike.
struct FaultPlanConfig {
  SimDuration horizon = 0;  ///< faults land in [0, horizon)
  int link_stalls = 2;
  int link_jitter_bursts = 2;
  int cpu_stalls = 2;
  int slow_copy_windows = 1;
  int control_delays = 2;
  /// Fatal QP kills (default 0: plans generated before this knob existed
  /// draw the identical RNG sequence, so their schedules replay unchanged).
  int qp_kills = 0;
  SimDuration max_link_stall_delay = 0;
  SimDuration max_jitter = 0;
  SimDuration max_cpu_stall = 0;
  SimDuration max_control_hold = 0;
  double max_slow_copy_factor = 8.0;

  /// Derive magnitude bounds as fractions of `horizon` (counts keep their
  /// defaults unless already customised).
  static FaultPlanConfig ScaledTo(SimDuration horizon);
};

/// A seeded, fully deterministic schedule of fault events.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultEvent> events;

  static FaultPlan Generate(std::uint64_t seed, const FaultPlanConfig& cfg);

  /// Human-readable dump, one event per line.
  std::string Describe() const;
};

/// Implemented by endpoints (the EXS control channel) that can freeze and
/// later release — strictly in arrival order — their incoming completion
/// dispatch.  Lives here so the injector stays EXS-agnostic while the
/// dependency arrow keeps pointing exs -> simnet.
class IncomingHoldTarget {
 public:
  virtual ~IncomingHoldTarget() = default;
  /// Defer dispatch of completions arriving from now until now + `hold`;
  /// release them (and any backlog) in order once the hold expires.
  virtual void HoldIncoming(SimDuration hold) = 0;
};

/// Implemented by endpoints (the EXS socket) whose transport can be forced
/// into the fatal error state.  Same layering rationale as
/// IncomingHoldTarget.
class TransportKillTarget {
 public:
  virtual ~TransportKillTarget() = default;
  /// Kill the endpoint's transport.  Must return false — and do nothing —
  /// when it is already dead: a fault scheduled against a dead transport
  /// is a no-op, never a second flush or a dangling callback.
  virtual bool KillTransport() = 0;
};

/// Arms a FaultPlan on a fabric: schedules every window open/close on the
/// fabric's event scheduler and owns the RNG the jitter faults draw from.
/// Must outlive the simulation run that executes the plan.
class FaultInjector {
 public:
  explicit FaultInjector(Fabric& fabric)
      : fabric_(&fabric), jitter_rng_(fabric.seed() * 48271 + 11) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Attach the endpoint that receives kControlDelay faults for `node`.
  /// Plans containing control delays for an unattached node skip them.
  void AttachControlTarget(std::size_t node, IncomingHoldTarget* target) {
    EXS_CHECK(node < 2);
    control_targets_[node] = target;
  }

  /// Attach the endpoint that receives kQpKill faults for `node`.  Plans
  /// containing kills for an unattached node skip them.
  void AttachKillTarget(std::size_t node, TransportKillTarget* target) {
    EXS_CHECK(node < 2);
    kill_targets_[node] = target;
  }

  std::uint64_t KillsApplied() const { return kills_applied_; }

  /// Schedule every event of `plan`.  May be called once per injector.
  void Arm(const FaultPlan& plan);

  std::uint64_t FaultsArmed() const { return armed_; }
  std::uint64_t FaultsApplied() const { return applied_; }

 private:
  void Apply(const FaultEvent& ev);

  Fabric* fabric_;
  Rng jitter_rng_;  ///< shared by all jitter windows; seeded per fabric
  IncomingHoldTarget* control_targets_[2] = {nullptr, nullptr};
  TransportKillTarget* kill_targets_[2] = {nullptr, nullptr};
  std::uint64_t armed_ = 0;
  std::uint64_t applied_ = 0;
  std::uint64_t kills_applied_ = 0;  ///< kills that actually took effect
  bool armed_once_ = false;
};

}  // namespace exs::simnet
