// Point-to-point link model.
//
// A SimplexChannel carries opaque messages in one direction with
// store-and-forward timing: a message occupies the transmitter for
// bytes/bandwidth (FIFO serialisation), then arrives after the propagation
// delay plus any emulator-added delay.  A fixed `extra_delay` plus uniform
// jitter reproduces the paper's Anue network-emulator setup; because the
// transports modelled on top are reliable and in-order (RC), delivery order
// is clamped monotone even when jitter would reorder frames (real hardware
// achieves the same with transport-level retransmission).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "simnet/event_scheduler.hpp"

namespace exs::simnet {

/// Delay emulator configuration (the "Anue" box).
struct NetemConfig {
  SimDuration extra_delay = 0;    ///< fixed one-way added delay
  SimDuration jitter = 0;         ///< uniform in [0, jitter] per message
};

struct ChannelConfig {
  Bandwidth bandwidth;            ///< serialisation rate
  SimDuration propagation = 0;    ///< one-way base propagation delay
  NetemConfig netem;              ///< optional emulator stage
};

class SimplexChannel {
 public:
  SimplexChannel(EventScheduler& scheduler, ChannelConfig config,
                 std::uint64_t jitter_seed = 1)
      : scheduler_(&scheduler), config_(config), jitter_rng_(jitter_seed) {}

  SimplexChannel(const SimplexChannel&) = delete;
  SimplexChannel& operator=(const SimplexChannel&) = delete;

  const ChannelConfig& config() const { return config_; }

  /// Fault injection (simnet/faults.hpp): an additional per-message delay,
  /// modelling a link stall/flap as the retransmission-delay burst the
  /// transport would experience.  Additive so that overlapping fault
  /// windows compose; the monotone delivery clamp below keeps the RC
  /// in-order guarantee intact no matter how large the burst.
  void AddFaultDelay(SimDuration delta) {
    fault_delay_ += delta;
    if (fault_delay_ < 0) fault_delay_ = 0;
  }
  /// Fault injection: extra uniform jitter in [0, amount] per message,
  /// sampled from the injector-owned RNG (keeps runs seed-deterministic).
  void AddFaultJitter(SimDuration delta, Rng* rng) {
    fault_jitter_ += delta;
    if (fault_jitter_ < 0) fault_jitter_ = 0;
    fault_rng_ = rng;
  }
  SimDuration fault_delay() const { return fault_delay_; }

  /// Begin transmitting `bytes` now (or when the transmitter frees up).
  /// `on_delivered` runs at the instant the last byte arrives at the far
  /// end.  Returns the delivery time.
  SimTime Transmit(std::uint64_t bytes, std::function<void()> on_delivered) {
    SimTime now = scheduler_->Now();
    SimTime start = now > tx_free_at_ ? now : tx_free_at_;
    SimTime tx_end = start + config_.bandwidth.TransmissionTime(bytes);
    tx_free_at_ = tx_end;

    SimDuration delay = config_.propagation + config_.netem.extra_delay;
    if (config_.netem.jitter > 0) {
      delay += static_cast<SimDuration>(jitter_rng_.NextBelow(
          static_cast<std::uint64_t>(config_.netem.jitter) + 1));
    }
    delay += fault_delay_;
    if (fault_jitter_ > 0 && fault_rng_ != nullptr) {
      delay += static_cast<SimDuration>(fault_rng_->NextBelow(
          static_cast<std::uint64_t>(fault_jitter_) + 1));
    }
    SimTime arrival = tx_end + delay;
    // Reliable in-order transport: never deliver behind an earlier message.
    if (arrival < last_delivery_) arrival = last_delivery_;
    last_delivery_ = arrival;

    bytes_carried_ += bytes;
    ++messages_carried_;
    scheduler_->ScheduleAt(arrival, std::move(on_delivered));
    return arrival;
  }

  /// Time at which the transmitter becomes free.
  SimTime TxFreeAt() const { return tx_free_at_; }

  std::uint64_t BytesCarried() const { return bytes_carried_; }
  std::uint64_t MessagesCarried() const { return messages_carried_; }

 private:
  EventScheduler* scheduler_;
  ChannelConfig config_;
  Rng jitter_rng_;
  SimDuration fault_delay_ = 0;
  SimDuration fault_jitter_ = 0;
  Rng* fault_rng_ = nullptr;
  SimTime tx_free_at_ = 0;
  SimTime last_delivery_ = 0;
  std::uint64_t bytes_carried_ = 0;
  std::uint64_t messages_carried_ = 0;
};

}  // namespace exs::simnet
