#include "simnet/faults.hpp"

#include <sstream>

namespace exs::simnet {

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkStall: return "link_stall";
    case FaultKind::kLinkJitter: return "link_jitter";
    case FaultKind::kCpuStall: return "cpu_stall";
    case FaultKind::kSlowCopy: return "slow_copy";
    case FaultKind::kControlDelay: return "control_delay";
    case FaultKind::kQpKill: return "qp_kill";
  }
  return "unknown";
}

FaultPlanConfig FaultPlanConfig::ScaledTo(SimDuration horizon) {
  EXS_CHECK(horizon > 0);
  FaultPlanConfig cfg;
  cfg.horizon = horizon;
  // Bounds chosen so a single fault visibly perturbs the schedule (many
  // message times long) without dwarfing the run: the largest stall is a
  // few percent of the horizon.
  cfg.max_link_stall_delay = horizon / 32;
  cfg.max_jitter = horizon / 64;
  cfg.max_cpu_stall = horizon / 32;
  cfg.max_control_hold = horizon / 32;
  return cfg;
}

FaultPlan FaultPlan::Generate(std::uint64_t seed, const FaultPlanConfig& cfg) {
  EXS_CHECK(cfg.horizon > 0);
  FaultPlan plan;
  plan.seed = seed;
  // Domain-separate the plan RNG from other seed consumers (fabric link
  // jitter, CPU jitter) that derive from the same sweep seed.
  Rng rng(SplitMix64(seed ^ 0xfa417ab5eedc0deull).Next());
  auto window_at = [&]() {
    return static_cast<SimTime>(
        rng.NextBelow(static_cast<std::uint64_t>(cfg.horizon)));
  };
  auto magnitude_below = [&](SimDuration max) {
    // At least one picosecond so every generated fault is a real
    // perturbation; Generate with max==0 simply emits none of that kind.
    if (max <= 0) return static_cast<SimDuration>(0);
    return static_cast<SimDuration>(
        1 + rng.NextBelow(static_cast<std::uint64_t>(max)));
  };

  for (int i = 0; i < cfg.link_stalls; ++i) {
    FaultEvent ev;
    ev.kind = FaultKind::kLinkStall;
    ev.target = rng.NextBelow(2);
    ev.at = window_at();
    ev.magnitude = magnitude_below(cfg.max_link_stall_delay);
    ev.duration = magnitude_below(cfg.horizon / 8);
    if (ev.magnitude > 0) plan.events.push_back(ev);
  }
  for (int i = 0; i < cfg.link_jitter_bursts; ++i) {
    FaultEvent ev;
    ev.kind = FaultKind::kLinkJitter;
    ev.target = rng.NextBelow(2);
    ev.at = window_at();
    ev.magnitude = magnitude_below(cfg.max_jitter);
    ev.duration = magnitude_below(cfg.horizon / 8);
    if (ev.magnitude > 0) plan.events.push_back(ev);
  }
  for (int i = 0; i < cfg.cpu_stalls; ++i) {
    FaultEvent ev;
    ev.kind = FaultKind::kCpuStall;
    ev.target = rng.NextBelow(2);
    ev.at = window_at();
    ev.magnitude = magnitude_below(cfg.max_cpu_stall);
    if (ev.magnitude > 0) plan.events.push_back(ev);
  }
  for (int i = 0; i < cfg.slow_copy_windows; ++i) {
    FaultEvent ev;
    ev.kind = FaultKind::kSlowCopy;
    ev.target = rng.NextBelow(2);
    ev.at = window_at();
    ev.duration = magnitude_below(cfg.horizon / 8);
    ev.factor = 1.0 + rng.NextDouble() * (cfg.max_slow_copy_factor - 1.0);
    if (ev.duration > 0) plan.events.push_back(ev);
  }
  for (int i = 0; i < cfg.control_delays; ++i) {
    FaultEvent ev;
    ev.kind = FaultKind::kControlDelay;
    ev.target = rng.NextBelow(2);
    ev.at = window_at();
    ev.magnitude = magnitude_below(cfg.max_control_hold);
    if (ev.magnitude > 0) plan.events.push_back(ev);
  }
  // Drawn last: plans generated with qp_kills == 0 (every plan from before
  // the knob existed) consume the identical RNG prefix above and so replay
  // byte-for-byte.
  for (int i = 0; i < cfg.qp_kills; ++i) {
    FaultEvent ev;
    ev.kind = FaultKind::kQpKill;
    ev.target = rng.NextBelow(2);
    ev.at = window_at();
    plan.events.push_back(ev);
  }
  return plan;
}

std::string FaultPlan::Describe() const {
  std::ostringstream out;
  out << "FaultPlan seed=" << seed << " events=" << events.size() << "\n";
  for (const FaultEvent& ev : events) {
    out << "  " << ToString(ev.kind) << " target=" << ev.target
        << " at=" << ev.at << " duration=" << ev.duration
        << " magnitude=" << ev.magnitude << " factor=" << ev.factor << "\n";
  }
  return out.str();
}

void FaultInjector::Arm(const FaultPlan& plan) {
  EXS_CHECK_MSG(!armed_once_, "FaultInjector::Arm may be called once");
  armed_once_ = true;
  EventScheduler& sched = fabric_->scheduler();
  for (const FaultEvent& ev : plan.events) {
    ++armed_;
    sched.ScheduleAt(ev.at, [this, ev]() { Apply(ev); });
  }
}

void FaultInjector::Apply(const FaultEvent& ev) {
  EventScheduler& sched = fabric_->scheduler();
  switch (ev.kind) {
    case FaultKind::kLinkStall: {
      SimplexChannel& ch = fabric_->channel_from(ev.target);
      ch.AddFaultDelay(ev.magnitude);
      sched.ScheduleAfter(ev.duration, [&ch, mag = ev.magnitude]() {
        ch.AddFaultDelay(-mag);
      });
      break;
    }
    case FaultKind::kLinkJitter: {
      SimplexChannel& ch = fabric_->channel_from(ev.target);
      ch.AddFaultJitter(ev.magnitude, &jitter_rng_);
      sched.ScheduleAfter(ev.duration, [&ch, mag = ev.magnitude, this]() {
        ch.AddFaultJitter(-mag, &jitter_rng_);
      });
      break;
    }
    case FaultKind::kCpuStall: {
      fabric_->node(ev.target).cpu().InjectStall(ev.magnitude);
      break;
    }
    case FaultKind::kSlowCopy: {
      Cpu& cpu = fabric_->node(ev.target).cpu();
      cpu.MultiplyCostFactor(ev.factor);
      sched.ScheduleAfter(ev.duration, [&cpu, factor = ev.factor]() {
        cpu.DivideCostFactor(factor);
      });
      break;
    }
    case FaultKind::kControlDelay: {
      IncomingHoldTarget* target = control_targets_[ev.target];
      if (target == nullptr) return;  // endpoint not attached: skip
      target->HoldIncoming(ev.magnitude);
      break;
    }
    case FaultKind::kQpKill: {
      TransportKillTarget* target = kill_targets_[ev.target];
      if (target == nullptr) return;  // endpoint not attached: skip
      // A kill against an already-dead transport (an earlier kill, or the
      // peer's propagated death) is a guaranteed no-op.
      if (target->KillTransport()) ++kills_applied_;
      break;
    }
  }
  ++applied_;
}

}  // namespace exs::simnet
