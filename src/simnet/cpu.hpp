// A node's CPU as a serially-shared resource.
//
// Everything a host does in software — processing a completion, running the
// EXS library's matching logic, and above all copying bytes out of the
// intermediate receive buffer — occupies the CPU for a modelled duration.
// Tasks queue FIFO, so a long memcpy delays subsequent completions and ACKs
// exactly the way it does on real hardware.  Cumulative busy time divided by
// elapsed time reproduces the paper's receiver CPU-usage measurements
// (Fig. 10).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "simnet/event_scheduler.hpp"

namespace exs::simnet {

class Cpu {
 public:
  explicit Cpu(EventScheduler& scheduler) : scheduler_(&scheduler) {}

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Model OS scheduling noise: each task's cost is scaled by a uniform
  /// factor in [1-fraction, 1+fraction].  Deterministic for a seed.  Real
  /// hosts always have this jitter, and it matters for the protocol: brief
  /// stalls open the drain windows in which the receiver resynchronises.
  void SetJitter(double fraction, std::uint64_t seed) {
    EXS_CHECK(fraction >= 0.0 && fraction < 1.0);
    jitter_ = fraction;
    rng_.Seed(seed);
  }

  /// Fault injection (simnet/faults.hpp): scale every task's cost by
  /// `factor` while a slow-host window is open — a throttled or contended
  /// core, which above all slows the receiver's copy-out path.  Multiplied
  /// so overlapping windows compose; DivideCostFactor closes one window.
  void MultiplyCostFactor(double factor) {
    EXS_CHECK(factor > 0.0);
    cost_factor_ *= factor;
  }
  void DivideCostFactor(double factor) {
    EXS_CHECK(factor > 0.0);
    cost_factor_ /= factor;
  }
  double cost_factor() const { return cost_factor_; }

  /// Fault injection: occupy the CPU for `stall` doing nothing — an OS
  /// preemption.  FIFO like any task, so already-queued work runs first
  /// and everything behind the stall (copies, completion handling, ACKs)
  /// slips by its length.  Bypasses the jitter RNG so arming a stall does
  /// not perturb the jitter sequence of real tasks.
  void InjectStall(SimDuration stall) {
    EXS_CHECK(stall >= 0);
    ++stalls_injected_;
    tasks_.push_back(Task{stall, nullptr});
    if (!running_) StartNext();
  }
  std::uint64_t StallsInjected() const { return stalls_injected_; }

  /// Enqueue `work` to run after the CPU has been busy for `cost`.  The
  /// callback executes at the task's completion instant.
  void Submit(SimDuration cost, std::function<void()> work) {
    EXS_CHECK(cost >= 0);
    if (jitter_ > 0.0 && cost > 0) {
      double factor = 1.0 + jitter_ * (2.0 * rng_.NextDouble() - 1.0);
      cost = static_cast<SimDuration>(static_cast<double>(cost) * factor);
    }
    if (cost_factor_ != 1.0) {
      cost = static_cast<SimDuration>(static_cast<double>(cost) *
                                      cost_factor_);
    }
    tasks_.push_back(Task{cost, std::move(work)});
    if (!running_) StartNext();
  }

  /// Total time this CPU has spent executing tasks.
  SimDuration BusyTime() const { return busy_; }

  /// Number of tasks executed to completion.
  std::uint64_t CompletedTasks() const { return completed_; }

  /// Tasks waiting or executing.
  std::size_t QueueDepth() const {
    return tasks_.size() + (running_ ? 1 : 0);
  }

  bool Idle() const { return !running_ && tasks_.empty(); }

  EventScheduler& scheduler() { return *scheduler_; }

 private:
  struct Task {
    SimDuration cost;
    std::function<void()> work;
  };

  void StartNext() {
    if (tasks_.empty()) {
      running_ = false;
      return;
    }
    running_ = true;
    Task task = std::move(tasks_.front());
    tasks_.pop_front();
    scheduler_->ScheduleAfter(task.cost, [this, task = std::move(task)]() {
      busy_ += task.cost;
      ++completed_;
      // Run the work before starting the next task so that work submitted
      // from inside a callback lands behind already-queued tasks.
      if (task.work) task.work();
      StartNext();
    });
  }

  EventScheduler* scheduler_;
  std::deque<Task> tasks_;
  double jitter_ = 0.0;
  double cost_factor_ = 1.0;
  Rng rng_;
  bool running_ = false;
  SimDuration busy_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t stalls_injected_ = 0;
};

}  // namespace exs::simnet
