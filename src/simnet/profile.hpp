// Hardware profiles: the timing constants that stand in for the paper's
// testbeds.
//
// The paper ran on (1) Mellanox ConnectX-3 FDR InfiniBand through an FDR
// switch and (2) Mellanox ConnectX-2 10 GbE RoCE through an Anue delay
// emulator.  We model each fabric as an effective data bandwidth (wire rate
// derated for PCIe/DMA efficiency), a one-way propagation delay, per-work-
// request HCA overheads, a host memcpy bandwidth (which bounds the indirect
// path), and the software costs of event notification — the paper used
// event notification rather than busy polling, and that wake-up latency is
// what makes ADVERT replenishment lag behind a fast sender.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "simnet/link.hpp"

namespace exs::simnet {

struct HardwareProfile {
  std::string name;

  /// Effective data bandwidth of one link direction (wire rate derated for
  /// encoding and PCIe/DMA efficiency).
  Bandwidth link_bandwidth;

  /// One-way propagation delay of the fabric (cables + switch).
  SimDuration propagation = 0;

  /// Added delay emulator stage (fixed delay + jitter), zero on LAN.
  NetemConfig netem;

  /// Sender-side HCA processing per work request before serialisation.
  SimDuration send_wr_overhead = 0;

  /// Cost decomposition of send_wr_overhead for *batched* posting
  /// (QueuePair::PostSendBatch).  A doorbell ring is one MMIO/PCIe write
  /// plus the driver bookkeeping around it; per_wr_cost is the residual
  /// descriptor-build + DMA-fetch work each WR still pays.  A batch of N
  /// WRs is charged doorbell_cost + N * per_wr_cost, so batching trades
  /// one doorbell across the batch — the RDMAbox WR-merging effect.  Both
  /// zero (the default) makes PostSendBatch fall back to charging
  /// send_wr_overhead per WR, i.e. batching changes nothing: existing
  /// profiles and recorded artefacts are unaffected until a profile opts
  /// in.  Single-WR posts through PostSend always charge send_wr_overhead,
  /// so a doorbell-split profile keeps its unbatched timing identical.
  SimDuration doorbell_cost = 0;
  SimDuration per_wr_cost = 0;

  /// Receiver-side HCA processing from last byte to completion raised.
  SimDuration recv_delivery_overhead = 0;

  /// Host-side cost of registering one memory region (ibv_reg_mr: pinning
  /// pages, writing translation entries).  Charged as simulated time on
  /// the registering device's host clock when nonzero; the default 0 keeps
  /// registration free, matching the seed model.  The MR registration
  /// cache (verbs::Device::EnableMrCache) exists to amortise exactly this
  /// cost across buffer reuse.
  SimDuration mr_register_cost = 0;

  /// Maximum payload the HCA accepts inline in a send WR.
  std::uint32_t max_inline = 256;

  /// Older iWARP hardware has no RDMA WRITE WITH IMM; the operation is
  /// emulated by an RDMA WRITE followed by a small SEND carrying the
  /// notification (§II-B of the paper).  Costs one extra wire message and
  /// one extra per-WR overhead per transfer.
  bool emulate_wwi_with_send = false;

  /// Host memory-copy bandwidth; bounds the indirect (buffered) path.
  Bandwidth memcpy_bandwidth = Bandwidth::GigabytesPerSecond(3.4);

  /// Latency from completion enqueued to the application thread waking up
  /// (event notification, not busy polling — §IV-B of the paper).
  SimDuration completion_notify_delay = Microseconds(8);

  /// Busy-poll completion queues instead: a spinning reader notices a
  /// completion within `busy_poll_check` and pays no wake-up jitter, at
  /// the cost of a core pinned at 100%.  The paper used event
  /// notification because its messages were large enough that polling
  /// buys little (§IV-B); the ext_busy_poll ablation quantifies that.
  bool busy_polling = false;
  SimDuration busy_poll_check = Nanoseconds(200);

  HardwareProfile WithBusyPolling() const {
    HardwareProfile p = *this;
    p.busy_polling = true;
    return p;
  }

  /// CPU time the library + application burn handling one completion.
  SimDuration per_event_cpu = Microseconds(1.5);

  /// Interrupt-latency variance: per-wake-up notification-delay jitter as
  /// a +/- fraction.  Event-channel wake-ups on real hosts range over an
  /// order of magnitude; the long stalls are when peers catch up with each
  /// other.
  double notify_jitter = 0.35;

  /// OS scheduling noise: per-CPU-task cost jitter as a +/- fraction.
  /// Real hosts always have some; it opens the brief stalls in which the
  /// receiver drains its buffer and resynchronises to direct service.
  double cpu_jitter = 0.25;

  /// FDR InfiniBand testbed: ConnectX-3 through an SX6036 switch.
  /// 56 Gb/s signalling, 54.24 Gb/s data rate, ~47 Gb/s attainable through
  /// PCIe gen-3; ib_write_lat one-way latency 0.76 us for 64-byte messages.
  static HardwareProfile FdrInfiniBand() {
    HardwareProfile p;
    p.name = "fdr-infiniband";
    p.link_bandwidth = Bandwidth::GigabitsPerSecond(47.0);
    p.propagation = Nanoseconds(350);
    p.send_wr_overhead = Nanoseconds(200);
    // Batched-post decomposition: ~140 ns of the per-WR cost is the
    // doorbell MMIO + driver entry, ~60 ns is descriptor work that every
    // WR in a batch still pays (ConnectX-3 figures from the RDMAbox
    // WR-merging analysis).  Only PostSendBatch reads these.
    p.doorbell_cost = Nanoseconds(140);
    p.per_wr_cost = Nanoseconds(60);
    p.recv_delivery_overhead = Nanoseconds(200);
    // ibv_reg_mr on these hosts: page pinning + MTT update, dominated by
    // the kernel transition for small regions.  Charged only when a
    // device arms its MR cost model (verbs::Device::EnableMrCostModel).
    p.mr_register_cost = Microseconds(15);
    return p;
  }

  /// QDR InfiniBand: 32 Gb/s data rate, ~27 Gb/s attainable.  The paper
  /// notes indirect transfers compare much more favourably here because the
  /// wire rate is not dramatically above memcpy throughput.
  static HardwareProfile QdrInfiniBand() {
    HardwareProfile p = FdrInfiniBand();
    p.name = "qdr-infiniband";
    p.link_bandwidth = Bandwidth::GigabitsPerSecond(27.0);
    return p;
  }

  /// 10 GbE RoCE testbed: ConnectX-2, PCIe gen-2 nodes.
  static HardwareProfile RoCE10G() {
    HardwareProfile p;
    p.name = "roce-10g";
    p.link_bandwidth = Bandwidth::GigabitsPerSecond(9.4);
    p.propagation = Microseconds(1.0);
    p.send_wr_overhead = Nanoseconds(300);
    // ConnectX-2 / PCIe gen-2: the doorbell write and driver entry are a
    // larger share of the per-WR cost than on the FDR testbed.
    p.doorbell_cost = Nanoseconds(210);
    p.per_wr_cost = Nanoseconds(90);
    p.recv_delivery_overhead = Nanoseconds(300);
    p.mr_register_cost = Microseconds(20);
    return p;
  }

  /// Older-generation 10 Gb/s iWARP RNIC: no native RDMA WRITE WITH IMM,
  /// so the notification travels as a trailing SEND (§II-B).
  static HardwareProfile Iwarp10G() {
    HardwareProfile p = RoCE10G();
    p.name = "iwarp-10g-legacy";
    p.emulate_wwi_with_send = true;
    return p;
  }

  /// RoCE through the Anue emulator set to a fixed round-trip delay, as in
  /// the paper's distance experiments (48 ms RTT -> 24 ms each way).
  static HardwareProfile RoCE10GWithDelay(SimDuration one_way_delay,
                                          SimDuration jitter = 0) {
    HardwareProfile p = RoCE10G();
    p.name = "roce-10g-netem";
    p.netem.extra_delay = one_way_delay;
    p.netem.jitter = jitter;
    return p;
  }
};

}  // namespace exs::simnet
