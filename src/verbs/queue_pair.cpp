#include "verbs/queue_pair.hpp"

#include <cstring>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "verbs/srq.hpp"

namespace exs::verbs {

const char* ToString(WcStatus status) {
  switch (status) {
    case WcStatus::kSuccess: return "success";
    case WcStatus::kRnrError: return "receiver-not-ready";
    case WcStatus::kLocalLengthError: return "local-length-error";
    case WcStatus::kRemoteAccessError: return "remote-access-error";
    case WcStatus::kWrFlushError: return "wr-flush-error";
    case WcStatus::kRetryExceededError: return "retry-exceeded-error";
  }
  return "?";
}

const char* ToString(WcOpcode opcode) {
  switch (opcode) {
    case WcOpcode::kSend: return "send";
    case WcOpcode::kRdmaWrite: return "rdma-write";
    case WcOpcode::kRdmaWriteWithImm: return "rdma-write-imm";
    case WcOpcode::kRdmaRead: return "rdma-read";
    case WcOpcode::kRecv: return "recv";
    case WcOpcode::kRecvRdmaWithImm: return "recv-rdma-imm";
  }
  return "?";
}

QueuePair::QueuePair(Device& device, CompletionQueue& send_cq,
                     CompletionQueue& recv_cq)
    : device_(&device), send_cq_(&send_cq), recv_cq_(&recv_cq) {
  device.NoteQueuePairCreated();
}

void QueuePair::ConnectPair(QueuePair& a, QueuePair& b) {
  EXS_CHECK_MSG(!a.connected() && !b.connected(),
                "queue pair already connected");
  EXS_CHECK_MSG(&a.device_->fabric() == &b.device_->fabric(),
                "queue pairs must share a fabric");
  EXS_CHECK_MSG(a.device_->node_index() != b.device_->node_index(),
                "RC connection needs two distinct nodes");
  a.peer_ = &b;
  b.peer_ = &a;
  a.tx_channel_ = &a.device_->fabric().channel_from(a.device_->node_index());
  b.tx_channel_ = &b.device_->fabric().channel_from(b.device_->node_index());
}

WcOpcode QueuePair::SendWcOpcode(Opcode op) {
  switch (op) {
    case Opcode::kSend: return WcOpcode::kSend;
    case Opcode::kRdmaWrite: return WcOpcode::kRdmaWrite;
    case Opcode::kRdmaWriteWithImm: return WcOpcode::kRdmaWriteWithImm;
    case Opcode::kRdmaRead: return WcOpcode::kRdmaRead;
  }
  return WcOpcode::kSend;
}

SimDuration QueuePair::AckReturnDelay() const {
  // Transport acknowledgments ride the reverse direction without queueing
  // behind data (they coalesce into headers on real hardware), so they see
  // only the propagation path, including any emulator-added delay.
  const auto& cfg = tx_channel_->config();
  return cfg.propagation + cfg.netem.extra_delay;
}

void QueuePair::PostSend(const SendWorkRequest& wr) {
  PostSendCharged(wr, device_->profile().send_wr_overhead);
}

void QueuePair::PostSendBatch(std::span<const SendWorkRequest> wrs) {
  if (wrs.empty()) return;
  const auto& profile = device_->profile();
  ++stats_.doorbells;
  stats_.batched_wrs += wrs.size();
  if (inst_.doorbells) inst_.doorbells->Increment();
  if (inst_.batched_wrs) inst_.batched_wrs->Add(wrs.size());
  if (profile.doorbell_cost == 0 && profile.per_wr_cost == 0) {
    // Profile does not decompose the doorbell: a batch costs exactly what
    // N single posts would, so batching changes no timing.
    for (const SendWorkRequest& wr : wrs) {
      PostSendCharged(wr, profile.send_wr_overhead);
    }
    return;
  }
  // One doorbell ring amortised over the batch: the first WR carries the
  // MMIO + driver-entry cost, every WR pays its descriptor work.
  for (std::size_t i = 0; i < wrs.size(); ++i) {
    SimDuration cost = profile.per_wr_cost + (i == 0 ? profile.doorbell_cost : 0);
    PostSendCharged(wrs[i], cost);
  }
}

void QueuePair::PostSendCharged(const SendWorkRequest& wr,
                                SimDuration wr_cost) {
  EXS_CHECK_MSG(connected(), "PostSend on unconnected queue pair");
  EXS_CHECK_MSG(wr.num_sge >= 1 && wr.num_sge <= kMaxSge,
                "send WR gather list length out of [1, kMaxSge]");

  if (killed_) {
    // Error-state QP: the WR never touches the wire and completes
    // immediately with a flush status (real RC error-state semantics —
    // posting is legal, working is not).
    auto pkt = std::make_shared<Packet>();
    pkt->wr = wr;
    pkt->payload_len = wr.total_length();
    pkt->post_time = device_->scheduler().Now();
    ++stats_.flushed_wrs;
    CompleteSend(pkt, WcStatus::kWrFlushError, 0);
    return;
  }

  auto pkt = std::make_shared<Packet>();
  pkt->wr = wr;
  pkt->payload_len = wr.total_length();
  pkt->post_time = device_->scheduler().Now();

  if (wr.opcode == Opcode::kRdmaRead) {
    // The SGE names *local* memory the response lands in.
    EXS_CHECK_MSG(wr.num_sge == 1, "RDMA READ takes a single SGE");
    const MemoryRegion* mr = device_->FindByLkey(wr.sge.lkey);
    EXS_CHECK_MSG(mr != nullptr && mr->Covers(wr.sge.addr, wr.sge.length),
                  "RDMA READ response buffer not registered");
  } else if (wr.inline_data) {
    EXS_CHECK_MSG(wr.num_sge == 1, "inline sends take a single SGE");
    EXS_CHECK_MSG(wr.sge.length <= device_->max_inline(),
                  "inline payload exceeds max_inline");
    // Inline payloads are always carried: the upper layer's control
    // messages must survive even when bulk payload carrying is disabled.
    if (wr.sge.length > 0) {
      pkt->payload.resize(wr.sge.length);
      std::memcpy(pkt->payload.data(),
                  reinterpret_cast<const void*>(wr.sge.addr), wr.sge.length);
    }
  } else if (pkt->payload_len > 0) {
    // Each gather element is validated against its own region — a list may
    // span several registrations.  Zero-length elements are legal padding
    // (real HCAs accept them) and touch no memory.  When the fabric
    // carries payload bytes the HCA's gather DMA is modelled by
    // snapshotting the slices, in order, into one contiguous image.
    if (device_->carry_payload()) pkt->payload.reserve(pkt->payload_len);
    for (std::uint32_t i = 0; i < wr.num_sge; ++i) {
      const Sge& sge = wr.sge_at(i);
      if (sge.length == 0) continue;
      const MemoryRegion* mr = device_->FindByLkey(sge.lkey);
      EXS_CHECK_MSG(mr != nullptr && mr->Covers(sge.addr, sge.length),
                    "send payload not covered by registered memory (lkey)");
      if (device_->carry_payload()) {
        const auto* src = reinterpret_cast<const std::uint8_t*>(sge.addr);
        pkt->payload.insert(pkt->payload.end(), src, src + sge.length);
      }
    }
  }

  ++stats_.sends_posted;
  stats_.payload_bytes_sent += pkt->payload_len;
  stats_.sge_entries_posted += wr.num_sge;
  stats_.sge_bytes_posted += wr.total_length();
  if (wr.num_sge > 1) ++stats_.gather_wrs;
  if (inst_.sends_posted) inst_.sends_posted->Increment();
  if (inst_.payload_bytes_sent) inst_.payload_bytes_sent->Add(pkt->payload_len);

  if (wr.opcode == Opcode::kRdmaWriteWithImm &&
      device_->profile().emulate_wwi_with_send) {
    // Legacy iWARP has no WRITE WITH IMM: ship the data as a plain RDMA
    // WRITE and the notification as a trailing zero-payload SEND (§II-B).
    // The pair costs two work requests and two wire messages.  The stripe
    // sequence (when present) travels on the notification half — it is
    // what consumes the receive and raises the upper layer's event.
    pkt->wr.opcode = Opcode::kRdmaWrite;
    pkt->wr.has_imm = false;
    pkt->wr.has_stripe_seq = false;
    pkt->wr.stripe_seq = 0;
    pkt->wr.has_mux = false;
    pkt->wr.mux_stream = 0;
    pkt->wr.mux_seq = 0;
    pkt->wr.mux_epoch = 0;
    pkt->suppress_success_completion = true;
    ScheduleTransmit(pkt, wr_cost);

    auto notify = std::make_shared<Packet>();
    notify->wr = wr;  // keeps the WWI opcode, imm, stripe seq and wr_id
    notify->wr.sge = Sge{};
    notify->wr.num_sge = 1;
    notify->payload_len = 0;
    notify->wwi_notify = true;
    notify->notify_len = pkt->payload_len;
    notify->post_time = pkt->post_time;
    ++stats_.sends_posted;
    if (inst_.sends_posted) inst_.sends_posted->Increment();
    ScheduleTransmit(notify, wr_cost);
    return;
  }

  ScheduleTransmit(pkt, wr_cost);
}

void QueuePair::ScheduleTransmit(const PacketPtr& pkt, SimDuration wr_cost) {
  // Track the packet until its completion is raised so Kill() can flush it.
  // Completed packets are pruned lazily to keep the scan bounded.
  if (outstanding_.size() >= 64) {
    std::erase_if(outstanding_, [](const PacketPtr& p) { return p->done; });
  }
  outstanding_.push_back(pkt);
  // The HCA works through posted WRs FIFO, spending the per-WR overhead on
  // each before handing it to the link.
  SimTime now = device_->scheduler().Now();
  SimTime ready = (now > hca_busy_until_ ? now : hca_busy_until_) + wr_cost;
  hca_busy_until_ = ready;
  device_->scheduler().ScheduleAt(ready, [this, pkt] { Transmit(pkt); });
}

void QueuePair::Transmit(const PacketPtr& pkt) {
  if (killed_) return;  // flushed by Kill() before reaching the wire
  std::uint64_t wire_bytes =
      pkt->payload_len + kWireHeaderBytes + (pkt->wr.has_imm ? 4 : 0) +
      (pkt->wr.has_stripe_seq ? kStripeHeaderBytes : 0) +
      (pkt->wr.has_mux ? kMuxHeaderBytes : 0);
  stats_.wire_bytes_sent += wire_bytes;
  if (inst_.wire_bytes_sent) inst_.wire_bytes_sent->Add(wire_bytes);
  QueuePair* peer = peer_;
  tx_channel_->Transmit(wire_bytes, [this, peer, pkt] {
    WcStatus status = peer->Deliver(pkt, *this);
    if (pkt->wr.opcode != Opcode::kRdmaRead) {
      CompleteSend(pkt, status, AckReturnDelay());
    }
    // READ completions are raised by DeliverRead when the response lands.
  });
}

void QueuePair::CompleteSend(const PacketPtr& pkt, WcStatus status,
                             SimDuration extra_delay) {
  if (pkt->done) return;  // already reported (or flushed by Kill)
  pkt->done = true;
  if (pkt->suppress_success_completion && status == WcStatus::kSuccess) {
    return;  // data half of an emulated WWI; the notification reports
  }
  device_->scheduler().ScheduleAfter(extra_delay, [this, pkt, status] {
    WorkCompletion wc;
    wc.wr_id = pkt->wr.wr_id;
    wc.opcode = SendWcOpcode(pkt->wr.opcode);
    wc.status = status;
    wc.byte_len = static_cast<std::uint32_t>(pkt->payload_len);
    wc.qp = this;
    if (inst_.completion_latency) {
      inst_.completion_latency->Record(device_->scheduler().Now() -
                                       pkt->post_time);
    }
    send_cq_->Push(wc);
  });
}

WcStatus QueuePair::Deliver(const PacketPtr& pkt, QueuePair& sender) {
  if (killed_) {
    // A dead destination neither places bytes nor consumes receives; the
    // sender's transport retries exhaust against silence.
    return WcStatus::kRetryExceededError;
  }
  ++stats_.messages_delivered;
  if (inst_.messages_delivered) inst_.messages_delivered->Increment();
  const SendWorkRequest& wr = pkt->wr;

  if (pkt->wwi_notify) {
    // Trailing notification of an emulated WWI: the data already landed
    // via the preceding RDMA WRITE (in-order delivery guarantees it).
    RecvWorkRequest recv;
    if (!TakeRecv(&recv)) {
      ++stats_.rnr_errors;
      return WcStatus::kRnrError;
    }
    WorkCompletion wc;
    wc.wr_id = recv.wr_id;
    wc.qp = this;
    wc.opcode = WcOpcode::kRecvRdmaWithImm;
    wc.status = WcStatus::kSuccess;
    wc.has_imm = wr.has_imm;
    wc.imm = wr.imm;
    wc.has_stripe_seq = wr.has_stripe_seq;
    wc.stripe_seq = wr.stripe_seq;
    wc.has_mux = wr.has_mux;
    wc.mux_stream = wr.mux_stream;
    wc.mux_seq = wr.mux_seq;
    wc.mux_epoch = wr.mux_epoch;
    wc.trace_ctx = wr.trace_ctx;
    wc.byte_len = static_cast<std::uint32_t>(pkt->notify_len);
    PushRecvCompletionLater(wc);
    return WcStatus::kSuccess;
  }

  // RDMA opcodes touch our memory through the advertised rkey.
  if (wr.opcode == Opcode::kRdmaWrite ||
      wr.opcode == Opcode::kRdmaWriteWithImm ||
      wr.opcode == Opcode::kRdmaRead) {
    const MemoryRegion* mr = device_->FindByRkey(wr.rkey);
    if (mr == nullptr || !mr->Covers(wr.remote_addr, pkt->payload_len)) {
      ++stats_.remote_access_errors;
      EXS_WARN("RDMA " << static_cast<int>(wr.opcode)
                       << " remote access check failed (rkey=" << wr.rkey
                       << " addr=" << wr.remote_addr
                       << " len=" << pkt->payload_len << ")");
      return WcStatus::kRemoteAccessError;
    }
    if (wr.opcode == Opcode::kRdmaRead) return DeliverRead(pkt, sender);
    if (device_->carry_payload() && pkt->payload_len > 0) {
      std::memcpy(reinterpret_cast<void*>(wr.remote_addr),
                  pkt->payload.data(), pkt->payload_len);
    }
    if (wr.opcode == Opcode::kRdmaWrite) return WcStatus::kSuccess;
    // WWI falls through to consume a receive and notify.
  }

  RecvWorkRequest recv;
  if (!TakeRecv(&recv)) {
    ++stats_.rnr_errors;
    EXS_WARN("message arrived with no posted receive (RNR)");
    return WcStatus::kRnrError;
  }

  WorkCompletion wc;
  wc.wr_id = recv.wr_id;
  wc.qp = this;
  wc.has_imm = wr.has_imm;
  wc.imm = wr.imm;
  wc.has_stripe_seq = wr.has_stripe_seq;
  wc.stripe_seq = wr.stripe_seq;
  wc.has_mux = wr.has_mux;
  wc.mux_stream = wr.mux_stream;
  wc.mux_seq = wr.mux_seq;
  wc.mux_epoch = wr.mux_epoch;
  wc.trace_ctx = wr.trace_ctx;
  wc.byte_len = static_cast<std::uint32_t>(pkt->payload_len);

  if (wr.opcode == Opcode::kSend) {
    wc.opcode = WcOpcode::kRecv;
    if (pkt->payload_len > recv.sge.length) {
      ++stats_.length_errors;
      wc.status = WcStatus::kLocalLengthError;
      wc.byte_len = 0;
      PushRecvCompletionLater(wc);
      return WcStatus::kLocalLengthError;
    }
    if (!pkt->payload.empty()) {
      std::memcpy(reinterpret_cast<void*>(recv.sge.addr), pkt->payload.data(),
                  pkt->payload_len);
    }
  } else {
    wc.opcode = WcOpcode::kRecvRdmaWithImm;  // data already placed above
  }
  wc.status = WcStatus::kSuccess;
  PushRecvCompletionLater(wc);
  return WcStatus::kSuccess;
}

WcStatus QueuePair::DeliverRead(const PacketPtr& pkt, QueuePair& sender) {
  // Build the response: bytes read from our memory travel back over our
  // transmit channel and complete the requester's READ when they arrive.
  auto response = std::make_shared<Packet>(*pkt);
  if (device_->carry_payload() && pkt->payload_len > 0) {
    response->payload.resize(pkt->payload_len);
    std::memcpy(response->payload.data(),
                reinterpret_cast<const void*>(pkt->wr.remote_addr),
                pkt->payload_len);
  }
  std::uint64_t wire_bytes = pkt->payload_len + kWireHeaderBytes;
  stats_.wire_bytes_sent += wire_bytes;
  if (inst_.wire_bytes_sent) inst_.wire_bytes_sent->Add(wire_bytes);
  QueuePair* requester = &sender;
  tx_channel_->Transmit(wire_bytes, [requester, response, pkt] {
    // `pkt` is the requester's original work request; if Kill() flushed it
    // while the response was in flight, the READ already completed with an
    // error and the landing response must not complete it again.
    if (pkt->done) return;
    pkt->done = true;
    if (requester->device_->carry_payload() && response->payload_len > 0) {
      std::memcpy(reinterpret_cast<void*>(response->wr.sge.addr),
                  response->payload.data(), response->payload_len);
    }
    requester->CompleteSend(response, WcStatus::kSuccess, 0);
  });
  return WcStatus::kSuccess;
}

void QueuePair::PushRecvCompletionLater(const WorkCompletion& wc) {
  device_->scheduler().ScheduleAfter(
      device_->profile().recv_delivery_overhead,
      [this, wc] { recv_cq_->Push(wc); });
}

bool QueuePair::TakeRecv(RecvWorkRequest* out) {
  if (srq_ != nullptr) {
    if (!srq_->Pop(out)) return false;
    ++stats_.srq_recvs_consumed;
    return true;
  }
  if (recv_queue_.empty()) return false;
  *out = recv_queue_.front();
  recv_queue_.pop_front();
  return true;
}

void QueuePair::SetSharedReceiveQueue(SharedReceiveQueue* srq) {
  EXS_CHECK_MSG(srq != nullptr, "SetSharedReceiveQueue(nullptr)");
  EXS_CHECK_MSG(&srq->device() == device_,
                "SRQ and queue pair must live on the same device");
  EXS_CHECK_MSG(recv_queue_.empty(),
                "cannot attach an SRQ to a QP with private receives posted");
  srq_ = srq;
}

std::size_t QueuePair::PostedRecvCount() const {
  return srq_ != nullptr ? srq_->PostedRecvCount() : recv_queue_.size();
}

void QueuePair::PostRecv(const RecvWorkRequest& wr) {
  EXS_CHECK_MSG(connected(), "PostRecv on unconnected queue pair");
  EXS_CHECK_MSG(srq_ == nullptr,
                "PostRecv on an SRQ-attached queue pair; post to the SRQ");
  if (killed_) {
    ++stats_.flushed_wrs;
    WorkCompletion wc;
    wc.wr_id = wr.wr_id;
    wc.opcode = WcOpcode::kRecv;
    wc.status = WcStatus::kWrFlushError;
    wc.qp = this;
    PushRecvCompletionLater(wc);
    return;
  }
  if (wr.sge.length > 0) {
    const MemoryRegion* mr = device_->FindByLkey(wr.sge.lkey);
    EXS_CHECK_MSG(mr != nullptr && mr->Covers(wr.sge.addr, wr.sge.length),
                  "receive buffer not covered by registered memory (lkey)");
  }
  ++stats_.recvs_posted;
  if (inst_.recvs_posted) inst_.recvs_posted->Increment();
  recv_queue_.push_back(wr);
}

void QueuePair::Kill() {
  if (killed_) return;
  killed_ = true;

  // Flush every send WR whose completion is still owed.  The data half of
  // an emulated WWI never reports (its notification half does, and is
  // flushed on its own), so it is marked done silently.
  for (const PacketPtr& pkt : outstanding_) {
    if (pkt->done) continue;
    if (pkt->suppress_success_completion) {
      pkt->done = true;
      continue;
    }
    ++stats_.flushed_wrs;
    CompleteSend(pkt, WcStatus::kWrFlushError, 0);
  }
  outstanding_.clear();

  // Flush the private receive queue.  Receives parked in a shared receive
  // queue are the pool's, not this QP's, and stay available to the other
  // attached QPs.
  while (!recv_queue_.empty()) {
    RecvWorkRequest recv = recv_queue_.front();
    recv_queue_.pop_front();
    ++stats_.flushed_wrs;
    WorkCompletion wc;
    wc.wr_id = recv.wr_id;
    wc.opcode = WcOpcode::kRecv;
    wc.status = WcStatus::kWrFlushError;
    wc.qp = this;
    PushRecvCompletionLater(wc);
  }

  if (error_handler_) error_handler_(WcStatus::kWrFlushError);

  // The peer learns of the death when its transport retries exhaust: one
  // ack-return delay later its own QP enters the error state too.
  if (peer_ != nullptr && !peer_->killed_) {
    QueuePair* peer = peer_;
    device_->scheduler().ScheduleAfter(AckReturnDelay(),
                                       [peer] { peer->Kill(); });
  }
}

}  // namespace exs::verbs
