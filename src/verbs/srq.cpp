#include "verbs/srq.hpp"

#include "common/check.hpp"
#include "verbs/device.hpp"

namespace exs::verbs {

void SharedReceiveQueue::PostRecv(const RecvWorkRequest& wr) {
  if (wr.sge.length > 0) {
    const MemoryRegion* mr = device_->FindByLkey(wr.sge.lkey);
    EXS_CHECK_MSG(mr != nullptr && mr->Covers(wr.sge.addr, wr.sge.length),
                  "SRQ receive buffer not covered by registered memory "
                  "(lkey)");
  }
  ++total_posted_;
  queue_.push_back(wr);
}

bool SharedReceiveQueue::Pop(RecvWorkRequest* out) {
  if (queue_.empty()) {
    ++empty_pops_;
    return false;
  }
  *out = queue_.front();
  queue_.pop_front();
  ++total_consumed_;
  return true;
}

}  // namespace exs::verbs
