// Shared receive queue (SRQ) emulation.
//
// The per-connection receive pool is the scalability killer in datacenter
// RDMA deployments (RDMAvisor; Taranov et al.): with N connections each
// pre-posting k receives, receiver memory and posted-WR bookkeeping grow
// O(N·k) even though only a few connections are bursting at any instant.
// The standard remedy — and what this class models — is the verbs SRQ: one
// pool of posted receives that every attached queue pair consumes from, so
// the receiver provisions for the *aggregate* arrival rate instead of the
// per-connection worst case.
//
// Semantics mirrored from hardware:
//   * receives are consumed strictly FIFO from the shared pool, whichever
//     queue pair the consuming message arrived on;
//   * a queue pair attached to an SRQ has no private receive queue —
//     posting to it directly is a usage error;
//   * an arrival finding the pool empty is the receiver-not-ready
//     condition, exactly as with a private queue (the upper layer's
//     admission control and credit accounting must prevent it).
//
// Per-QP fairness is observable: each queue pair counts the receives it
// drew from the pool (QueuePairStats::srq_recvs_consumed), so a connection
// starving the pool shows up in the stats rather than only as its victims'
// RNR drops.
#pragma once

#include <cstdint>
#include <deque>

#include "verbs/types.hpp"

namespace exs::verbs {

class Device;

class SharedReceiveQueue {
 public:
  explicit SharedReceiveQueue(Device& device) : device_(&device) {}

  SharedReceiveQueue(const SharedReceiveQueue&) = delete;
  SharedReceiveQueue& operator=(const SharedReceiveQueue&) = delete;

  /// Post a receive into the shared pool.  The buffer must be covered by a
  /// registered region on the owning device (same rule as QueuePair).
  void PostRecv(const RecvWorkRequest& wr);

  std::size_t PostedRecvCount() const { return queue_.size(); }
  Device& device() { return *device_; }

  // Aggregate accounting (the per-QP split lives in QueuePairStats).
  std::uint64_t TotalPosted() const { return total_posted_; }
  std::uint64_t TotalConsumed() const { return total_consumed_; }
  /// Arrivals that found the pool empty (surfaced as RNR to the sender).
  std::uint64_t EmptyPops() const { return empty_pops_; }

 private:
  friend class QueuePair;

  /// Consume the pool head; false when empty (RNR at the caller).
  bool Pop(RecvWorkRequest* out);

  Device* device_;
  std::deque<RecvWorkRequest> queue_;
  std::uint64_t total_posted_ = 0;
  std::uint64_t total_consumed_ = 0;
  std::uint64_t empty_pops_ = 0;
};

}  // namespace exs::verbs
