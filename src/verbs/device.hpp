// A node's RDMA device: owns memory registrations and manufactures
// completion queues bound to the node's CPU.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "simnet/fabric.hpp"
#include "verbs/completion.hpp"
#include "verbs/memory.hpp"

namespace exs::verbs {

class Device {
 public:
  /// `carry_payload` controls whether transfers move real bytes between
  /// buffers.  Tests and examples keep it on (data-integrity checks);
  /// large benchmark sweeps turn it off — the timing model is unaffected.
  Device(simnet::Fabric& fabric, std::size_t node_index,
         bool carry_payload = true);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  MemoryRegionPtr RegisterMemory(void* addr, std::size_t length);
  void DeregisterMemory(const MemoryRegionPtr& mr);

  /// Key lookups used by the data path; null when unknown or invalidated.
  const MemoryRegion* FindByLkey(std::uint32_t lkey) const;
  const MemoryRegion* FindByRkey(std::uint32_t rkey) const;

  /// A completion queue whose notification path runs on this node's CPU
  /// with the profile's event-notification costs.
  std::unique_ptr<CompletionQueue> CreateCompletionQueue();

  simnet::Fabric& fabric() { return *fabric_; }
  simnet::EventScheduler& scheduler() { return fabric_->scheduler(); }
  simnet::Node& node() { return fabric_->node(node_index_); }
  std::size_t node_index() const { return node_index_; }
  const simnet::HardwareProfile& profile() const { return fabric_->profile(); }
  bool carry_payload() const { return carry_payload_; }
  std::uint32_t max_inline() const { return profile().max_inline; }

  std::size_t RegisteredRegionCount() const { return by_lkey_.size(); }

  /// Lifetime count of queue pairs constructed against this device.  The
  /// verbs-state budget signal for the mux benches: dedicated-per-stream
  /// wiring grows this linearly with streams, a shared QP pool does not.
  std::uint64_t QueuePairsCreated() const { return qps_created_; }
  void NoteQueuePairCreated() { ++qps_created_; }

 private:
  simnet::Fabric* fabric_;
  std::size_t node_index_;
  bool carry_payload_;
  std::uint32_t next_key_ = 1;
  std::uint64_t cq_seed_ = 0;
  std::uint64_t qps_created_ = 0;
  std::unordered_map<std::uint32_t, MemoryRegionPtr> by_lkey_;
  std::unordered_map<std::uint32_t, MemoryRegionPtr> by_rkey_;
};

}  // namespace exs::verbs
