// A node's RDMA device: owns memory registrations and manufactures
// completion queues bound to the node's CPU.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/metrics.hpp"
#include "simnet/fabric.hpp"
#include "verbs/completion.hpp"
#include "verbs/memory.hpp"

namespace exs::verbs {

/// Observable counters of the MR registration cache (and the registration
/// cost model): `registrations` counts *actual* device registrations —
/// cache misses and uncached RegisterMemory calls alike — while
/// `cache_hits` counts pins satisfied without touching the device.
struct MrCacheStats {
  std::uint64_t registrations = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t evictions = 0;
};

class Device {
 public:
  /// `carry_payload` controls whether transfers move real bytes between
  /// buffers.  Tests and examples keep it on (data-integrity checks);
  /// large benchmark sweeps turn it off — the timing model is unaffected.
  Device(simnet::Fabric& fabric, std::size_t node_index,
         bool carry_payload = true);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  MemoryRegionPtr RegisterMemory(void* addr, std::size_t length);
  void DeregisterMemory(const MemoryRegionPtr& mr);

  /// Charge the profile's mr_register_cost (page pinning + MTT update) as
  /// simulated host-CPU time on every actual registration.  Off by
  /// default — the seed model registered for free, and recorded artefacts
  /// depend on that — so timing changes only when a run opts in.
  void EnableMrCostModel(bool on = true) { mr_cost_armed_ = on; }
  bool mr_cost_armed() const { return mr_cost_armed_; }
  /// Total simulated time charged for registrations so far.
  SimDuration MrTimeCharged() const { return mr_time_charged_; }

  /// Arm an LRU registration cache of at most `capacity` *unpinned*
  /// regions keyed by (addr, length) — the rdma-pipe buffer-reuse pattern.
  /// Pinned entries never count against capacity and are never evicted.
  void EnableMrCache(std::size_t capacity);
  bool mr_cache_enabled() const { return mr_cache_capacity_ > 0; }

  /// Pin a registration through the cache: a (addr, length) pair seen
  /// before (and still cached) is returned without touching the device —
  /// a cache hit; otherwise the region is registered (paying the cost
  /// model) and enters the cache pinned.  Each pin must be matched by an
  /// UnpinCached before the entry becomes evictable.  Requires
  /// EnableMrCache; falls back to plain RegisterMemory otherwise.
  MemoryRegionPtr RegisterMemoryCached(void* addr, std::size_t length);

  /// Drop one pin.  The registration stays valid and cached (warm for the
  /// next RegisterMemoryCached of the same buffer) until LRU eviction
  /// deregisters it.  Unpinning a region the cache does not hold is a
  /// no-op, so callers may release uncached regions uniformly.
  void UnpinCached(const MemoryRegionPtr& mr);

  const MrCacheStats& mr_cache_stats() const { return mr_cache_stats_; }
  /// Mirror future registration/cache-hit counts into registry counters
  /// (either may be null): the `mr.registrations` / `mr.cache_hits`
  /// instruments of docs/OBSERVABILITY.md.
  void SetMrInstruments(metrics::Counter* registrations,
                        metrics::Counter* cache_hits) {
    mr_registrations_counter_ = registrations;
    mr_cache_hits_counter_ = cache_hits;
  }

  /// Key lookups used by the data path; null when unknown or invalidated.
  const MemoryRegion* FindByLkey(std::uint32_t lkey) const;
  const MemoryRegion* FindByRkey(std::uint32_t rkey) const;

  /// A completion queue whose notification path runs on this node's CPU
  /// with the profile's event-notification costs.
  std::unique_ptr<CompletionQueue> CreateCompletionQueue();

  simnet::Fabric& fabric() { return *fabric_; }
  simnet::EventScheduler& scheduler() { return fabric_->scheduler(); }
  simnet::Node& node() { return fabric_->node(node_index_); }
  std::size_t node_index() const { return node_index_; }
  const simnet::HardwareProfile& profile() const { return fabric_->profile(); }
  bool carry_payload() const { return carry_payload_; }
  std::uint32_t max_inline() const { return profile().max_inline; }

  std::size_t RegisteredRegionCount() const { return by_lkey_.size(); }

  /// Lifetime count of queue pairs constructed against this device.  The
  /// verbs-state budget signal for the mux benches: dedicated-per-stream
  /// wiring grows this linearly with streams, a shared QP pool does not.
  std::uint64_t QueuePairsCreated() const { return qps_created_; }
  void NoteQueuePairCreated() { ++qps_created_; }

 private:
  struct CacheEntry {
    std::uint64_t addr = 0;
    std::uint64_t length = 0;
    MemoryRegionPtr mr;
    std::uint32_t pins = 0;
  };
  using CacheList = std::list<CacheEntry>;  // front = most recently used
  using CacheKey = std::pair<std::uint64_t, std::uint64_t>;

  void ChargeRegistration();
  void EvictOverCapacity();

  simnet::Fabric* fabric_;
  std::size_t node_index_;
  bool carry_payload_;
  std::uint32_t next_key_ = 1;
  std::uint64_t cq_seed_ = 0;
  std::uint64_t qps_created_ = 0;
  std::unordered_map<std::uint32_t, MemoryRegionPtr> by_lkey_;
  std::unordered_map<std::uint32_t, MemoryRegionPtr> by_rkey_;

  bool mr_cost_armed_ = false;
  SimDuration mr_time_charged_ = 0;
  std::size_t mr_cache_capacity_ = 0;
  CacheList mr_cache_;
  std::map<CacheKey, CacheList::iterator> mr_cache_index_;
  MrCacheStats mr_cache_stats_;
  metrics::Counter* mr_registrations_counter_ = nullptr;
  metrics::Counter* mr_cache_hits_counter_ = nullptr;
};

}  // namespace exs::verbs
