// Reliable-connected queue pair.
//
// Models the RC transport the paper uses: posted send work requests are
// processed FIFO by the sender HCA (per-WR overhead, then serialisation on
// the link), delivered in order, and completed back to the sender once the
// transport-level acknowledgment returns.  SEND and RDMA WRITE WITH IMM
// consume one posted receive at the destination — arriving with none posted
// is the receiver-not-ready condition, surfaced as an error completion
// (the upper layer's credit scheme must prevent it, and tests check that it
// does).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/metrics.hpp"
#include "common/units.hpp"
#include "verbs/device.hpp"
#include "verbs/types.hpp"

namespace exs::verbs {

class SharedReceiveQueue;

struct QueuePairStats {
  std::uint64_t sends_posted = 0;
  std::uint64_t recvs_posted = 0;
  std::uint64_t payload_bytes_sent = 0;
  std::uint64_t wire_bytes_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t rnr_errors = 0;
  std::uint64_t remote_access_errors = 0;
  std::uint64_t length_errors = 0;
  /// Receives this QP drew from an attached shared receive queue.  The
  /// per-QP split of a shared pool is the fairness signal: one connection
  /// monopolising the SRQ shows up here, not only in its victims' RNRs.
  std::uint64_t srq_recvs_consumed = 0;
  /// Work requests completed with kWrFlushError after Kill() put the QP in
  /// the error state (in-flight flushes plus refused new posts).
  std::uint64_t flushed_wrs = 0;
  /// Doorbell rings through PostSendBatch and the work requests they
  /// covered.  batched_wrs / doorbells is the achieved batch depth.
  std::uint64_t doorbells = 0;
  std::uint64_t batched_wrs = 0;
  /// Gather-list accounting: WRs posted with more than one SGE, total SGE
  /// entries across all posted sends, and the summed SGE byte lengths.
  /// sge_bytes_posted == payload_bytes_sent is the per-WR gather byte-
  /// conservation fact the invariant checker audits.
  std::uint64_t gather_wrs = 0;
  std::uint64_t sge_entries_posted = 0;
  std::uint64_t sge_bytes_posted = 0;
};

/// Pre-resolved registry instruments a queue pair records into alongside
/// its local stats struct.  All pointers optional; the upper layer (the
/// EXS control channel) resolves them against the socket's metrics
/// registry so per-rail QP activity shows up in snapshots and the
/// Perfetto timeline instead of living in a detached struct.
struct QueuePairInstruments {
  metrics::Counter* sends_posted = nullptr;
  metrics::Counter* recvs_posted = nullptr;
  metrics::Counter* payload_bytes_sent = nullptr;
  metrics::Counter* wire_bytes_sent = nullptr;
  metrics::Counter* messages_delivered = nullptr;
  metrics::Counter* doorbells = nullptr;        ///< PostSendBatch rings
  metrics::Counter* batched_wrs = nullptr;      ///< WRs covered by them
  metrics::Histogram* completion_latency = nullptr;  ///< ps, post -> send WC
};

class QueuePair {
 public:
  QueuePair(Device& device, CompletionQueue& send_cq,
            CompletionQueue& recv_cq);

  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  /// Bind two queue pairs on opposite nodes into an RC connection.
  static void ConnectPair(QueuePair& a, QueuePair& b);

  bool connected() const { return peer_ != nullptr; }

  /// Post a send-queue work request (SEND / RDMA WRITE / WWI / READ).
  /// Local misuse (unregistered memory, oversize inline, not connected)
  /// throws InvariantViolation; remote failures arrive as error
  /// completions.  A WR may gather up to kMaxSge source slices; the peer
  /// sees one contiguous payload of total_length() bytes.
  void PostSend(const SendWorkRequest& wr);

  /// Post a batch of send WRs behind a single doorbell.  Semantically
  /// identical to posting each WR in order; the difference is cost: one
  /// profile doorbell_cost for the whole batch plus per_wr_cost per WR,
  /// instead of send_wr_overhead per WR.  On profiles that do not split
  /// the doorbell out (doorbell_cost == per_wr_cost == 0) the batch is
  /// charged exactly like N single posts, so timing is unchanged.
  void PostSendBatch(std::span<const SendWorkRequest> wrs);

  /// Post a receive buffer.  Zero-length receives are permitted (they can
  /// still be consumed by WWI notifications).  Disallowed once an SRQ is
  /// attached — shared-pool QPs have no private receive queue.
  void PostRecv(const RecvWorkRequest& wr);

  /// Attach this QP to a shared receive queue on the same device.  From
  /// then on arriving messages consume pool receives FIFO instead of a
  /// private queue.  Must happen before any receive is consumed; the
  /// private queue must be empty.
  void SetSharedReceiveQueue(SharedReceiveQueue* srq);
  SharedReceiveQueue* shared_receive_queue() { return srq_; }

  std::size_t PostedRecvCount() const;
  Device& device() { return *device_; }
  const QueuePairStats& stats() const { return stats_; }

  /// Mirror future stat updates into registry instruments (all optional).
  void SetInstruments(const QueuePairInstruments& inst) { inst_ = inst; }

  /// Transition to the fatal error state: every in-flight send WR and every
  /// private posted receive completes with kWrFlushError, new posts are
  /// refused with an immediate flush completion, and arriving messages are
  /// dropped (the sender sees kRetryExceededError).  The peer QP discovers
  /// the death when its transport retries exhaust — one ack-return delay
  /// later it enters the error state too.  Idempotent; receives parked in a
  /// shared receive queue stay in the pool (they belong to the device, not
  /// this QP).
  void Kill();
  bool killed() const { return killed_; }

  /// Time for a transport acknowledgment (or a peer's discovery of this
  /// QP's death) to cross the connection: propagation plus any emulated
  /// extra delay.  Exposed so layers emulating transport faults above the
  /// QP — the mux tier's virtual per-stream kill — can propagate them with
  /// the same timing a real QP death would have.
  SimDuration AckReturnDelay() const;

  /// Callback invoked exactly once when the QP enters the error state,
  /// before any flush completion is dispatched.  Lets the upper layer learn
  /// of the death even when no WR happens to be outstanding.
  void SetErrorHandler(std::function<void(WcStatus)> handler) {
    error_handler_ = std::move(handler);
  }

 private:
  struct Packet {
    SendWorkRequest wr;
    std::uint64_t payload_len = 0;
    std::vector<std::uint8_t> payload;  // snapshot when carrying bytes
    /// WWI emulation on legacy iWARP (§II-B): the data half is a plain
    /// RDMA WRITE whose success completion is suppressed; the trailing
    /// notification SEND consumes the receive and reports the original
    /// WWI length through `notify_len`.
    bool wwi_notify = false;
    bool suppress_success_completion = false;
    std::uint64_t notify_len = 0;
    SimTime post_time = 0;  ///< for the completion-latency histogram
    /// Send completion already raised (or flushed) — dedups the race
    /// between a scheduled success completion and a Kill() flush.
    bool done = false;
  };
  using PacketPtr = std::shared_ptr<Packet>;

  /// PostSend body with an explicit per-WR HCA charge (the batch path
  /// passes the decomposed doorbell/per-WR costs).
  void PostSendCharged(const SendWorkRequest& wr, SimDuration wr_cost);
  void ScheduleTransmit(const PacketPtr& pkt, SimDuration wr_cost);
  void Transmit(const PacketPtr& pkt);
  /// Runs on the destination QP at arrival time; returns the status the
  /// transport acknowledgment reports back to the sender.
  WcStatus Deliver(const PacketPtr& pkt, QueuePair& sender);
  void CompleteSend(const PacketPtr& pkt, WcStatus status,
                    SimDuration extra_delay);
  WcStatus DeliverRead(const PacketPtr& pkt, QueuePair& sender);
  /// Raise a receive-side completion after the HCA delivery overhead.
  void PushRecvCompletionLater(const WorkCompletion& wc);
  /// Consume the next receive — from the SRQ when attached, else the
  /// private queue.  False means receiver-not-ready.
  bool TakeRecv(RecvWorkRequest* out);

  static WcOpcode SendWcOpcode(Opcode op);

  Device* device_;
  CompletionQueue* send_cq_;
  CompletionQueue* recv_cq_;
  QueuePair* peer_ = nullptr;
  simnet::SimplexChannel* tx_channel_ = nullptr;
  SimTime hca_busy_until_ = 0;
  SharedReceiveQueue* srq_ = nullptr;
  std::deque<RecvWorkRequest> recv_queue_;
  QueuePairStats stats_;
  QueuePairInstruments inst_;
  bool killed_ = false;
  /// Send WRs with a completion still owed; Kill() flushes these.
  std::vector<PacketPtr> outstanding_;
  std::function<void(WcStatus)> error_handler_;
};

}  // namespace exs::verbs
