// Work-request / work-completion vocabulary of the software verbs layer.
//
// This mirrors the OFA verbs objects the paper's library is written
// against: send and receive work requests posted to a queue pair, completed
// asynchronously through completion queues.  Differences from the hardware
// API are intentional simplifications and are documented in DESIGN.md
// (bounded gather list of kMaxSge entries per send work request, a single
// SGE per receive; local misuse throws instead of returning errno; remote
// failures still surface as error completions).
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>

namespace exs::verbs {

class QueuePair;

/// Bytes of link/transport framing charged per message on the wire
/// (roughly LRH + BTH + ICRC/VCRC for InfiniBand).
inline constexpr std::uint64_t kWireHeaderBytes = 30;

/// Extra header bytes charged when a message carries a stripe sequence
/// number (an extended header word, like the 8-byte ExtH InfiniBand uses
/// for optional transport extensions).
inline constexpr std::uint64_t kStripeHeaderBytes = 8;

/// Extra header bytes charged when a message carries stream-multiplexing
/// metadata (stream id + per-stream delivery sequence + epoch) so many
/// streams can share one queue pair.  Same extended-header word cost as
/// striping; a message may carry both extensions and pays for each.
inline constexpr std::uint64_t kMuxHeaderBytes = 8;

enum class Opcode : std::uint8_t {
  kSend,              ///< channel semantics; consumes a receive at the peer
  kRdmaWrite,         ///< memory semantics; peer passive
  kRdmaWriteWithImm,  ///< RDMA WRITE that also consumes a receive ("WWI")
  kRdmaRead,          ///< fetch from peer memory; peer passive
};

/// Completion opcodes distinguish send-side from receive-side completions.
enum class WcOpcode : std::uint8_t {
  kSend,
  kRdmaWrite,
  kRdmaWriteWithImm,
  kRdmaRead,
  kRecv,              ///< a SEND landed in our posted receive
  kRecvRdmaWithImm,   ///< a WWI consumed our posted receive
};

enum class WcStatus : std::uint8_t {
  kSuccess,
  kRnrError,          ///< message arrived with no posted receive
  kLocalLengthError,  ///< payload larger than the posted receive buffer
  kRemoteAccessError, ///< RDMA address/rkey check failed at the peer
  // Fatal transport states (QueuePair::Kill).  Appended only — the values
  // above are baked into recorded artefacts.
  kWrFlushError,       ///< WR flushed: the queue pair entered the error state
  kRetryExceededError, ///< transport retries exhausted against a dead peer
};

const char* ToString(WcStatus status);
const char* ToString(WcOpcode opcode);

/// Scatter/gather element.  `addr` is a real pointer into this process,
/// which plays the role of registered user virtual memory.
struct Sge {
  std::uint64_t addr = 0;
  std::uint32_t length = 0;
  std::uint32_t lkey = 0;
};

/// Gather-list bound per send work request (ibv_device_attr.max_sge
/// analogue).  Compile-time checked by SendWorkRequest::SetSgeList and
/// runtime-checked by AddSge, mirroring real verb builders that refuse a
/// longer list rather than silently truncating it.
inline constexpr std::uint32_t kMaxSge = 8;

struct SendWorkRequest {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::kSend;
  /// First gather element.  Most requests stop here: `num_sge` defaults to
  /// 1 and plain `wr.sge = {...}` assignment keeps its historical meaning.
  Sge sge;
  /// Gather elements 2..num_sge live here (index i-1 for element i).
  std::array<Sge, kMaxSge - 1> extra_sge{};
  std::uint32_t num_sge = 1;

  /// Append one gather element.  Throws on overflow — a list longer than
  /// kMaxSge is a local misuse, like posting to the wrong QP.
  void AddSge(const Sge& entry) {
    if (num_sge >= kMaxSge) {
      throw std::invalid_argument("SendWorkRequest: gather list exceeds "
                                  "kMaxSge entries");
    }
    extra_sge[num_sge - 1] = entry;
    ++num_sge;
  }

  /// Install a whole gather list at once; arity is checked at compile time
  /// (the rdmalib2 builder idiom).
  template <typename... Rest>
  void SetSgeList(const Sge& head, const Rest&... rest) {
    static_assert(1 + sizeof...(rest) <= kMaxSge,
                  "gather list exceeds kMaxSge entries");
    sge = head;
    num_sge = 1;
    (AddSge(rest), ...);
  }

  const Sge& sge_at(std::uint32_t i) const {
    return i == 0 ? sge : extra_sge[i - 1];
  }

  /// Total gathered payload bytes — what lands contiguously at the peer.
  std::uint64_t total_length() const {
    std::uint64_t total = 0;
    for (std::uint32_t i = 0; i < num_sge; ++i) total += sge_at(i).length;
    return total;
  }

  /// Copy the payload into the work request at post time instead of
  /// reading registered memory during the transfer; only valid up to the
  /// device's max_inline.  No lkey check is performed for inline sends.
  bool inline_data = false;

  bool has_imm = false;
  std::uint32_t imm = 0;

  /// Optional per-stream delivery sequence number carried in an extended
  /// wire header (multi-rail striping); surfaced verbatim in the
  /// receive-side completion.  Costs kStripeHeaderBytes on the wire.
  bool has_stripe_seq = false;
  std::uint64_t stripe_seq = 0;

  /// Optional stream-multiplexing extension (shared-QP streams): which of
  /// the QP's streams this message belongs to, its position in that
  /// stream's delivery sequence, and the stream's reconnect epoch (stale
  /// in-flight messages from before a virtual kill are dropped by epoch).
  /// Surfaced verbatim in the receive-side completion; costs
  /// kMuxHeaderBytes on the wire.
  bool has_mux = false;
  std::uint32_t mux_stream = 0;
  std::uint64_t mux_seq = 0;
  std::uint8_t mux_epoch = 0;

  /// RDMA opcodes address peer memory through these.
  std::uint64_t remote_addr = 0;
  std::uint32_t rkey = 0;

  /// Opaque causal-tracing correlation id (common/spans.hpp); 0 = not
  /// traced.  Pure metadata — carried alongside the message and surfaced
  /// in the receive-side completion, but charged zero wire bytes, so
  /// enabling tracing cannot change timing.
  std::uint64_t trace_ctx = 0;
};

struct RecvWorkRequest {
  std::uint64_t wr_id = 0;
  Sge sge;
};

struct WorkCompletion {
  std::uint64_t wr_id = 0;
  WcOpcode opcode = WcOpcode::kSend;
  WcStatus status = WcStatus::kSuccess;
  /// Bytes placed by the completed operation (receive-side and RDMA READ).
  std::uint32_t byte_len = 0;
  bool has_imm = false;
  std::uint32_t imm = 0;
  /// Stripe sequence number from the extended header, if present.
  bool has_stripe_seq = false;
  std::uint64_t stripe_seq = 0;
  /// Stream-multiplexing extension from the wire header, if present.
  bool has_mux = false;
  std::uint32_t mux_stream = 0;
  std::uint64_t mux_seq = 0;
  std::uint8_t mux_epoch = 0;
  /// Causal-tracing correlation id copied from the originating send work
  /// request (0 = untraced).
  std::uint64_t trace_ctx = 0;
  QueuePair* qp = nullptr;
};

}  // namespace exs::verbs
