#include "verbs/device.hpp"

#include "common/check.hpp"

namespace exs::verbs {

Device::Device(simnet::Fabric& fabric, std::size_t node_index,
               bool carry_payload)
    : fabric_(&fabric), node_index_(node_index),
      carry_payload_(carry_payload) {
  EXS_CHECK(node_index < 2);
}

MemoryRegionPtr Device::RegisterMemory(void* addr, std::size_t length) {
  EXS_CHECK_MSG(addr != nullptr && length > 0,
                "memory registration needs a real region");
  // Distinct lkey/rkey, as on real hardware.
  std::uint32_t lkey = next_key_++;
  std::uint32_t rkey = next_key_++;
  auto mr = std::make_shared<MemoryRegion>(addr, length, lkey, rkey);
  by_lkey_.emplace(lkey, mr);
  by_rkey_.emplace(rkey, mr);
  return mr;
}

void Device::DeregisterMemory(const MemoryRegionPtr& mr) {
  EXS_CHECK(mr != nullptr);
  mr->invalidated_ = true;
  by_lkey_.erase(mr->lkey());
  by_rkey_.erase(mr->rkey());
}

const MemoryRegion* Device::FindByLkey(std::uint32_t lkey) const {
  auto it = by_lkey_.find(lkey);
  return it == by_lkey_.end() ? nullptr : it->second.get();
}

const MemoryRegion* Device::FindByRkey(std::uint32_t rkey) const {
  auto it = by_rkey_.find(rkey);
  return it == by_rkey_.end() ? nullptr : it->second.get();
}

std::unique_ptr<CompletionQueue> Device::CreateCompletionQueue() {
  const auto& p = profile();
  SimDuration notify = p.busy_polling ? p.busy_poll_check
                                      : p.completion_notify_delay;
  auto cq = std::make_unique<CompletionQueue>(scheduler(), node().cpu(),
                                              notify, p.per_event_cpu);
  // A spinning poller has no wake-up variance.
  cq->SetNotifyJitter(p.busy_polling ? 0.0 : p.notify_jitter,
                      fabric_->seed() * 0x9d2c5680ULL +
                          (node_index_ + 1) * 6364136223846793005ULL +
                          ++cq_seed_);
  return cq;
}

}  // namespace exs::verbs
