#include "verbs/device.hpp"

#include "common/check.hpp"

namespace exs::verbs {

Device::Device(simnet::Fabric& fabric, std::size_t node_index,
               bool carry_payload)
    : fabric_(&fabric), node_index_(node_index),
      carry_payload_(carry_payload) {
  EXS_CHECK(node_index < 2);
}

MemoryRegionPtr Device::RegisterMemory(void* addr, std::size_t length) {
  EXS_CHECK_MSG(addr != nullptr && length > 0,
                "memory registration needs a real region");
  // Distinct lkey/rkey, as on real hardware.
  std::uint32_t lkey = next_key_++;
  std::uint32_t rkey = next_key_++;
  auto mr = std::make_shared<MemoryRegion>(addr, length, lkey, rkey);
  by_lkey_.emplace(lkey, mr);
  by_rkey_.emplace(rkey, mr);
  ++mr_cache_stats_.registrations;
  if (mr_registrations_counter_ != nullptr) {
    mr_registrations_counter_->Increment();
  }
  ChargeRegistration();
  return mr;
}

void Device::ChargeRegistration() {
  if (!mr_cost_armed_) return;
  SimDuration cost = profile().mr_register_cost;
  if (cost == 0) return;
  // ibv_reg_mr burns host CPU (kernel transition, page pinning, MTT
  // writes).  Occupy the node CPU for that long: registration itself
  // returns immediately — the syscall is synchronous in real life, but
  // what the simulation observes is that other host work (completion
  // handlers, pumps) queues behind it.
  mr_time_charged_ += cost;
  node().cpu().Submit(cost, [] {});
}

void Device::EnableMrCache(std::size_t capacity) {
  EXS_CHECK_MSG(capacity > 0, "MR cache needs a nonzero capacity");
  mr_cache_capacity_ = capacity;
}

MemoryRegionPtr Device::RegisterMemoryCached(void* addr, std::size_t length) {
  if (mr_cache_capacity_ == 0) return RegisterMemory(addr, length);
  CacheKey key{reinterpret_cast<std::uint64_t>(addr), length};
  auto it = mr_cache_index_.find(key);
  if (it != mr_cache_index_.end()) {
    // Hit: re-pin and refresh recency — no device work, no cost charge.
    mr_cache_.splice(mr_cache_.begin(), mr_cache_, it->second);
    CacheEntry& entry = *it->second;
    ++entry.pins;
    ++mr_cache_stats_.cache_hits;
    if (mr_cache_hits_counter_ != nullptr) mr_cache_hits_counter_->Increment();
    return entry.mr;
  }
  MemoryRegionPtr mr = RegisterMemory(addr, length);
  mr_cache_.push_front(CacheEntry{key.first, key.second, mr, 1});
  mr_cache_index_.emplace(key, mr_cache_.begin());
  EvictOverCapacity();
  return mr;
}

void Device::UnpinCached(const MemoryRegionPtr& mr) {
  EXS_CHECK(mr != nullptr);
  CacheKey key{reinterpret_cast<std::uint64_t>(mr->addr()), mr->length()};
  auto it = mr_cache_index_.find(key);
  if (it == mr_cache_index_.end() || it->second->mr != mr) return;
  CacheEntry& entry = *it->second;
  EXS_CHECK_MSG(entry.pins > 0, "UnpinCached without a matching pin");
  --entry.pins;
  EvictOverCapacity();
}

void Device::EvictOverCapacity() {
  // Only unpinned entries count against capacity (pinned regions are in
  // use by in-flight work requests and must stay registered), so walk from
  // the LRU end deregistering cold unpinned registrations until the
  // unpinned population fits.
  std::size_t unpinned = 0;
  for (const CacheEntry& entry : mr_cache_) {
    if (entry.pins == 0) ++unpinned;
  }
  for (auto it = mr_cache_.rbegin();
       it != mr_cache_.rend() && unpinned > mr_cache_capacity_;) {
    if (it->pins != 0) {
      ++it;
      continue;
    }
    DeregisterMemory(it->mr);
    ++mr_cache_stats_.evictions;
    --unpinned;
    mr_cache_index_.erase(CacheKey{it->addr, it->length});
    it = decltype(it){mr_cache_.erase(std::next(it).base())};
  }
}

void Device::DeregisterMemory(const MemoryRegionPtr& mr) {
  EXS_CHECK(mr != nullptr);
  mr->invalidated_ = true;
  by_lkey_.erase(mr->lkey());
  by_rkey_.erase(mr->rkey());
}

const MemoryRegion* Device::FindByLkey(std::uint32_t lkey) const {
  auto it = by_lkey_.find(lkey);
  return it == by_lkey_.end() ? nullptr : it->second.get();
}

const MemoryRegion* Device::FindByRkey(std::uint32_t rkey) const {
  auto it = by_rkey_.find(rkey);
  return it == by_rkey_.end() ? nullptr : it->second.get();
}

std::unique_ptr<CompletionQueue> Device::CreateCompletionQueue() {
  const auto& p = profile();
  SimDuration notify = p.busy_polling ? p.busy_poll_check
                                      : p.completion_notify_delay;
  auto cq = std::make_unique<CompletionQueue>(scheduler(), node().cpu(),
                                              notify, p.per_event_cpu);
  // A spinning poller has no wake-up variance.
  cq->SetNotifyJitter(p.busy_polling ? 0.0 : p.notify_jitter,
                      fabric_->seed() * 0x9d2c5680ULL +
                          (node_index_ + 1) * 6364136223846793005ULL +
                          ++cq_seed_);
  return cq;
}

}  // namespace exs::verbs
