// Memory registration.
//
// RDMA transfers may only touch registered memory; a region is addressed
// locally by its lkey and remotely by its rkey.  The paper's library (and
// the ES-API it implements) exposes registration to the user precisely so
// that transfers can be zero-copy, so we model registration and key checks
// faithfully: RDMA operations against an address range not covered by a
// valid key fail with a remote-access error completion.
#pragma once

#include <cstdint>
#include <memory>

namespace exs::verbs {

class Device;

class MemoryRegion {
 public:
  MemoryRegion(void* addr, std::size_t length, std::uint32_t lkey,
               std::uint32_t rkey)
      : addr_(addr), length_(length), lkey_(lkey), rkey_(rkey) {}

  void* addr() const { return addr_; }
  std::size_t length() const { return length_; }
  std::uint32_t lkey() const { return lkey_; }
  std::uint32_t rkey() const { return rkey_; }

  /// Does [start, start+len) fall entirely inside this region?
  bool Covers(std::uint64_t start, std::uint64_t len) const {
    auto base = reinterpret_cast<std::uint64_t>(addr_);
    return start >= base && len <= length_ &&
           start - base <= length_ - len;
  }

  bool invalidated() const { return invalidated_; }

 private:
  friend class Device;
  void* addr_;
  std::size_t length_;
  std::uint32_t lkey_;
  std::uint32_t rkey_;
  bool invalidated_ = false;
};

using MemoryRegionPtr = std::shared_ptr<MemoryRegion>;

}  // namespace exs::verbs
