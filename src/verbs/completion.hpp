// Completion queues with event notification.
//
// The paper's measurements all use event notification rather than busy
// polling (§IV-B), and that choice matters: the wake-up latency between a
// completion landing and the application reacting is a large part of why a
// fast sender outruns ADVERT replenishment.  The model here reproduces the
// standard completion-channel pattern: the first completion after idle pays
// the notification latency, then the handler drains the queue work by work
// on the node CPU (one per-event CPU charge each), then re-arms.
//
// Tests may instead poll the queue directly (no handler installed), which
// costs nothing — the busy-polling mode the paper contrasts against.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "simnet/cpu.hpp"
#include "simnet/event_scheduler.hpp"
#include "verbs/types.hpp"

namespace exs::verbs {

class CompletionQueue {
 public:
  CompletionQueue(simnet::EventScheduler& scheduler, simnet::Cpu& cpu,
                  SimDuration notify_delay, SimDuration per_event_cpu)
      : scheduler_(&scheduler),
        cpu_(&cpu),
        notify_delay_(notify_delay),
        per_event_cpu_(per_event_cpu) {}

  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  /// Model interrupt-latency variance: each wake-up's notification delay
  /// is scaled by a uniform factor in [1-fraction, 1+fraction].  Real
  /// event-channel wake-ups vary widely, and the variance matters to the
  /// protocol: a long sender-side stall is the window in which the
  /// receiver catches up and resynchronises.
  void SetNotifyJitter(double fraction, std::uint64_t seed) {
    notify_jitter_ = fraction;
    rng_.Seed(seed);
  }

  /// Install the event handler (completion-channel mode).  Every queued and
  /// future completion will be delivered to `handler` on the node CPU.
  void SetHandler(std::function<void(const WorkCompletion&)> handler) {
    handler_ = std::move(handler);
    MaybeScheduleWakeup();
  }

  /// Batched handler dispatch — the ibv_poll_cq loop idiom: one wake-up
  /// drains up to `max_n` queued completions in a single CPU pass, so
  /// every handler in the drain runs at the same simulated instant.  The
  /// per-event CPU charge still accrues per completion (the pass costs
  /// n * per_event_cpu); what changes is the clumping, which is what lets
  /// an upper layer batch the work requests it posts in response (doorbell
  /// batching rings once for the whole drain).  1 — the default — keeps
  /// the one-completion-per-pass model, bit-identical to builds without
  /// this knob.
  void SetDispatchBatch(std::size_t max_n) {
    EXS_CHECK_MSG(max_n >= 1, "dispatch batch must be at least 1");
    dispatch_batch_ = max_n;
  }

  /// Poll one completion (busy-polling mode); returns false if empty.
  /// Only meaningful when no handler is installed.
  bool Poll(WorkCompletion* out) {
    if (queue_.empty()) return false;
    *out = queue_.front();
    queue_.pop_front();
    return true;
  }

  /// Drain up to `max_n` completions into `out` in arrival order — the
  /// batched ibv_poll_cq idiom: one poll call amortised over a burst of
  /// completions.  Returns how many were written; 0 means empty.  Only
  /// meaningful when no handler is installed.
  std::size_t PollBatch(WorkCompletion* out, std::size_t max_n) {
    std::size_t n = 0;
    while (n < max_n && !queue_.empty()) {
      out[n++] = queue_.front();
      queue_.pop_front();
    }
    return n;
  }

  std::size_t Depth() const { return queue_.size(); }
  std::uint64_t TotalCompletions() const { return total_; }
  std::size_t MaxDepth() const { return max_depth_; }

  /// Internal: called by queue pairs when an operation completes.
  void Push(WorkCompletion wc) {
    queue_.push_back(wc);
    ++total_;
    if (queue_.size() > max_depth_) max_depth_ = queue_.size();
    MaybeScheduleWakeup();
  }

 private:
  void MaybeScheduleWakeup() {
    if (!handler_ || wakeup_pending_ || queue_.empty()) return;
    wakeup_pending_ = true;
    SimDuration delay = notify_delay_;
    if (notify_jitter_ > 0.0 && delay > 0) {
      double factor = 1.0 + notify_jitter_ * (2.0 * rng_.NextDouble() - 1.0);
      delay = static_cast<SimDuration>(static_cast<double>(delay) * factor);
    }
    scheduler_->ScheduleAfter(delay, [this] {
      // The one-per-pass path is kept verbatim (not folded into the batch
      // path) so the default stays bit-identical: same CPU submissions in
      // the same order means the same jitter RNG draws.
      if (dispatch_batch_ == 1) {
        cpu_->Submit(per_event_cpu_, [this] { HandleOne(); });
      } else {
        SubmitDrain();
      }
    });
  }

  void HandleOne() {
    if (queue_.empty() || !handler_) {
      wakeup_pending_ = false;
      return;
    }
    WorkCompletion wc = queue_.front();
    queue_.pop_front();
    handler_(wc);
    if (!queue_.empty()) {
      // Already awake: drain without paying the notification latency again.
      cpu_->Submit(per_event_cpu_, [this] { HandleOne(); });
    } else {
      wakeup_pending_ = false;
    }
  }

  /// Batched dispatch: charge the CPU for everything visible now (up to
  /// the batch bound), then run those handlers back to back in one pass.
  /// Completions landing while the pass executes wait for the next one —
  /// a real poll loop would likewise only see them on its next ibv_poll_cq.
  void SubmitDrain() {
    std::size_t n = queue_.size() < dispatch_batch_ ? queue_.size()
                                                    : dispatch_batch_;
    if (n == 0 || !handler_) {
      wakeup_pending_ = false;
      return;
    }
    cpu_->Submit(per_event_cpu_ * static_cast<SimDuration>(n),
                 [this, n] { HandleBatch(n); });
  }

  void HandleBatch(std::size_t n) {
    for (std::size_t i = 0; i < n && !queue_.empty() && handler_; ++i) {
      WorkCompletion wc = queue_.front();
      queue_.pop_front();
      handler_(wc);
    }
    if (!queue_.empty() && handler_) {
      // Already awake: next pass, no notification latency.
      SubmitDrain();
    } else {
      wakeup_pending_ = false;
    }
  }

  simnet::EventScheduler* scheduler_;
  simnet::Cpu* cpu_;
  SimDuration notify_delay_;
  SimDuration per_event_cpu_;
  double notify_jitter_ = 0.0;
  Rng rng_;
  std::function<void(const WorkCompletion&)> handler_;
  std::deque<WorkCompletion> queue_;
  std::size_t dispatch_batch_ = 1;
  bool wakeup_pending_ = false;
  std::uint64_t total_ = 0;
  std::size_t max_depth_ = 0;
};

}  // namespace exs::verbs
