// Completion queues with event notification.
//
// The paper's measurements all use event notification rather than busy
// polling (§IV-B), and that choice matters: the wake-up latency between a
// completion landing and the application reacting is a large part of why a
// fast sender outruns ADVERT replenishment.  The model here reproduces the
// standard completion-channel pattern: the first completion after idle pays
// the notification latency, then the handler drains the queue work by work
// on the node CPU (one per-event CPU charge each), then re-arms.
//
// Tests may instead poll the queue directly (no handler installed), which
// costs nothing — the busy-polling mode the paper contrasts against.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "simnet/cpu.hpp"
#include "simnet/event_scheduler.hpp"
#include "verbs/types.hpp"

namespace exs::verbs {

class CompletionQueue {
 public:
  CompletionQueue(simnet::EventScheduler& scheduler, simnet::Cpu& cpu,
                  SimDuration notify_delay, SimDuration per_event_cpu)
      : scheduler_(&scheduler),
        cpu_(&cpu),
        notify_delay_(notify_delay),
        per_event_cpu_(per_event_cpu) {}

  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  /// Model interrupt-latency variance: each wake-up's notification delay
  /// is scaled by a uniform factor in [1-fraction, 1+fraction].  Real
  /// event-channel wake-ups vary widely, and the variance matters to the
  /// protocol: a long sender-side stall is the window in which the
  /// receiver catches up and resynchronises.
  void SetNotifyJitter(double fraction, std::uint64_t seed) {
    notify_jitter_ = fraction;
    rng_.Seed(seed);
  }

  /// Install the event handler (completion-channel mode).  Every queued and
  /// future completion will be delivered to `handler` on the node CPU.
  void SetHandler(std::function<void(const WorkCompletion&)> handler) {
    handler_ = std::move(handler);
    MaybeScheduleWakeup();
  }

  /// Poll one completion (busy-polling mode); returns false if empty.
  /// Only meaningful when no handler is installed.
  bool Poll(WorkCompletion* out) {
    if (queue_.empty()) return false;
    *out = queue_.front();
    queue_.pop_front();
    return true;
  }

  std::size_t Depth() const { return queue_.size(); }
  std::uint64_t TotalCompletions() const { return total_; }
  std::size_t MaxDepth() const { return max_depth_; }

  /// Internal: called by queue pairs when an operation completes.
  void Push(WorkCompletion wc) {
    queue_.push_back(wc);
    ++total_;
    if (queue_.size() > max_depth_) max_depth_ = queue_.size();
    MaybeScheduleWakeup();
  }

 private:
  void MaybeScheduleWakeup() {
    if (!handler_ || wakeup_pending_ || queue_.empty()) return;
    wakeup_pending_ = true;
    SimDuration delay = notify_delay_;
    if (notify_jitter_ > 0.0 && delay > 0) {
      double factor = 1.0 + notify_jitter_ * (2.0 * rng_.NextDouble() - 1.0);
      delay = static_cast<SimDuration>(static_cast<double>(delay) * factor);
    }
    scheduler_->ScheduleAfter(delay, [this] {
      cpu_->Submit(per_event_cpu_, [this] { HandleOne(); });
    });
  }

  void HandleOne() {
    if (queue_.empty() || !handler_) {
      wakeup_pending_ = false;
      return;
    }
    WorkCompletion wc = queue_.front();
    queue_.pop_front();
    handler_(wc);
    if (!queue_.empty()) {
      // Already awake: drain without paying the notification latency again.
      cpu_->Submit(per_event_cpu_, [this] { HandleOne(); });
    } else {
      wakeup_pending_ = false;
    }
  }

  simnet::EventScheduler* scheduler_;
  simnet::Cpu* cpu_;
  SimDuration notify_delay_;
  SimDuration per_event_cpu_;
  double notify_jitter_ = 0.0;
  Rng rng_;
  std::function<void(const WorkCompletion&)> handler_;
  std::deque<WorkCompletion> queue_;
  bool wakeup_pending_ = false;
  std::uint64_t total_ = 0;
  std::size_t max_depth_ = 0;
};

}  // namespace exs::verbs
