#include "common/spans.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace exs::spans {

namespace {

/// SplitMix64 finaliser: the sampling decision hash.  Self-contained so
/// the sampling schedule can never drift with the workload RNG.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

SimDuration Delta(SimTime from, SimTime to) {
  if (from == kNoTime || to == kNoTime || to < from) return 0;
  return to - from;
}

/// Nearest-rank percentile over an ascending-sorted vector.
SimDuration NearestRank(const std::vector<SimDuration>& sorted, double p) {
  if (sorted.empty()) return 0;
  std::size_t rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted.size()) + 0.999999);
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

std::string FormatUs(SimDuration ps) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f",
                static_cast<double>(ps) / 1e6);
  return buf;
}

void AppendStageJson(std::ostringstream* out, const char* name,
                     const StageStats& st) {
  *out << "{\"stage\":\"" << name << "\",\"count\":" << st.count
       << ",\"sum_ps\":" << st.sum_ps << ",\"min_ps\":" << st.min_ps
       << ",\"max_ps\":" << st.max_ps << ",\"p50_ps\":" << st.p50_ps
       << ",\"p99_ps\":" << st.p99_ps << ",\"p999_ps\":" << st.p999_ps
       << "}";
}

}  // namespace

StageStats Summarise(std::vector<SimDuration>* durations) {
  StageStats st;
  if (durations->empty()) return st;
  std::sort(durations->begin(), durations->end());
  st.count = durations->size();
  st.min_ps = durations->front();
  st.max_ps = durations->back();
  for (SimDuration d : *durations) {
    st.sum_ps += static_cast<std::uint64_t>(d);
  }
  st.p50_ps = NearestRank(*durations, 50.0);
  st.p99_ps = NearestRank(*durations, 99.0);
  st.p999_ps = NearestRank(*durations, 99.9);
  return st;
}

const char* StageName(Stage s) {
  switch (s) {
    case Stage::kTxStaging: return "tx_staging";
    case Stage::kTxQueue: return "tx_queue";
    case Stage::kWire: return "wire";
    case Stage::kRxReorder: return "rx_reorder";
    case Stage::kRxRing: return "rx_ring";
    case Stage::kRxCopy: return "rx_copy";
    case Stage::kRxDeliver: return "rx_deliver";
  }
  return "?";
}

SimDuration ChunkRecord::StageDuration(Stage s) const {
  switch (s) {
    case Stage::kTxStaging: return Delta(t_submit, t_flush);
    case Stage::kTxQueue: return Delta(t_flush, t_post);
    case Stage::kWire: return Delta(t_post, t_arrive);
    case Stage::kRxReorder: return Delta(t_arrive, t_process);
    case Stage::kRxRing: return Delta(t_process, t_ring_end);
    case Stage::kRxCopy: return Delta(t_ring_end, t_copied);
    case Stage::kRxDeliver: return Delta(t_copied, t_deliver);
  }
  return 0;
}

SimDuration ChunkRecord::EndToEnd() const {
  return Delta(t_submit, t_deliver);
}

SpanCollector::SpanCollector(std::uint64_t seed, std::uint64_t sample_period)
    : seed_(seed), sample_period_(sample_period == 0 ? 1 : sample_period) {
  endpoints_.push_back("?");  // id 0 = unregistered
}

std::uint64_t SpanCollector::RegisterEndpoint(const std::string& name) {
  endpoints_.push_back(name);
  return endpoints_.size() - 1;
}

const std::string& SpanCollector::EndpointName(std::uint64_t id) const {
  if (id >= endpoints_.size()) return endpoints_[0];
  return endpoints_[id];
}

bool SpanCollector::Sampled(std::uint64_t ordinal) const {
  if (sample_period_ <= 1) return true;
  return Mix(seed_ ^ ordinal) % sample_period_ == 0;
}

std::uint64_t SpanCollector::BeginChunk(std::uint64_t tx_endpoint,
                                        SimTime submit, SimTime flush,
                                        SimTime post, std::uint64_t len,
                                        bool indirect, bool coalesced,
                                        std::uint32_t rail) {
  const std::uint64_t ordinal = chunks_seen_++;
  if (!Sampled(ordinal)) return 0;
  ChunkRecord rec;
  rec.id = chunks_.size() + 1;
  rec.tx_endpoint = tx_endpoint;
  rec.len = len;
  rec.tx_rail = rail;
  rec.indirect = indirect;
  rec.coalesced = coalesced;
  rec.t_submit = submit;
  rec.t_flush = flush == kNoTime ? submit : flush;
  rec.t_post = post;
  chunks_.push_back(rec);
  return rec.id;
}

ChunkRecord* SpanCollector::Find(std::uint64_t id) {
  if (id == 0 || id > chunks_.size()) return nullptr;
  return &chunks_[id - 1];
}

const ChunkRecord* SpanCollector::Find(std::uint64_t id) const {
  if (id == 0 || id > chunks_.size()) return nullptr;
  return &chunks_[id - 1];
}

void SpanCollector::NoteTxComplete(std::uint64_t id, SimTime now) {
  if (ChunkRecord* rec = Find(id)) rec->t_tx_complete = now;
}

void SpanCollector::NoteArrive(std::uint64_t id, SimTime now,
                               std::uint64_t rx_endpoint,
                               std::uint32_t rail) {
  if (ChunkRecord* rec = Find(id)) {
    rec->t_arrive = now;
    rec->rx_endpoint = rx_endpoint;
    rec->rx_rail = rail;
  }
}

void SpanCollector::NoteProcess(std::uint64_t id, SimTime now) {
  if (ChunkRecord* rec = Find(id)) {
    rec->t_process = now;
    if (!rec->indirect) {
      // Direct transfers land in user memory: no ring residence, no copy.
      rec->t_ring_end = now;
      rec->t_copied = now;
    }
  }
}

void SpanCollector::NoteRingCopyStart(std::uint64_t id, SimTime now) {
  if (ChunkRecord* rec = Find(id)) {
    if (rec->t_ring_end == kNoTime) rec->t_ring_end = now;
  }
}

void SpanCollector::NoteCopied(std::uint64_t id, SimTime now) {
  if (ChunkRecord* rec = Find(id)) rec->t_copied = now;
}

void SpanCollector::NoteDeliver(std::uint64_t id, SimTime now) {
  if (ChunkRecord* rec = Find(id)) rec->t_deliver = now;
}

LatencyReport SpanCollector::BuildReport() const {
  LatencyReport report;
  report.chunks_sampled = chunks_.size();
  std::vector<SimDuration> stage_durations[kStageCount];
  std::vector<SimDuration> e2e;
  std::vector<std::vector<SimDuration>> by_rail;
  for (const ChunkRecord& rec : chunks_) {
    if (!rec.delivered()) continue;
    ++report.chunks_delivered;
    for (std::size_t s = 0; s < kStageCount; ++s) {
      stage_durations[s].push_back(
          rec.StageDuration(static_cast<Stage>(s)));
    }
    e2e.push_back(rec.EndToEnd());
    if (by_rail.size() <= rec.rx_rail) by_rail.resize(rec.rx_rail + 1);
    by_rail[rec.rx_rail].push_back(rec.StageDuration(Stage::kRxReorder));
  }
  for (std::size_t s = 0; s < kStageCount; ++s) {
    report.stages[s] = Summarise(&stage_durations[s]);
  }
  report.end_to_end = Summarise(&e2e);
  report.reorder_by_rail.resize(by_rail.size());
  for (std::size_t r = 0; r < by_rail.size(); ++r) {
    report.reorder_by_rail[r] = Summarise(&by_rail[r]);
  }
  return report;
}

std::string LatencyReport::ToText() const {
  std::ostringstream out;
  out << "chunks delivered: " << chunks_delivered << " (sampled "
      << chunks_sampled << ")\n";
  char line[160];
  std::snprintf(line, sizeof line, "%-12s %8s %12s %12s %12s %12s\n",
                "stage", "count", "p50 us", "p99 us", "p999 us", "max us");
  out << line;
  auto row = [&](const char* name, const StageStats& st) {
    std::snprintf(line, sizeof line, "%-12s %8llu %12s %12s %12s %12s\n",
                  name, static_cast<unsigned long long>(st.count),
                  FormatUs(st.p50_ps).c_str(), FormatUs(st.p99_ps).c_str(),
                  FormatUs(st.p999_ps).c_str(), FormatUs(st.max_ps).c_str());
    out << line;
  };
  for (std::size_t s = 0; s < kStageCount; ++s) {
    row(StageName(static_cast<Stage>(s)), stages[s]);
  }
  row("end_to_end", end_to_end);
  for (std::size_t r = 0; r < reorder_by_rail.size(); ++r) {
    if (reorder_by_rail[r].count == 0) continue;
    std::string name = "hol_rail" + std::to_string(r);
    row(name.c_str(), reorder_by_rail[r]);
  }
  return out.str();
}

std::string LatencyReport::ToJson() const {
  std::ostringstream out;
  out << "{\"chunks_delivered\":" << chunks_delivered
      << ",\"chunks_sampled\":" << chunks_sampled << ",\"stages\":[";
  for (std::size_t s = 0; s < kStageCount; ++s) {
    if (s) out << ",";
    AppendStageJson(&out, StageName(static_cast<Stage>(s)), stages[s]);
  }
  out << "],\"end_to_end\":";
  AppendStageJson(&out, "end_to_end", end_to_end);
  out << ",\"hol_by_rail\":[";
  for (std::size_t r = 0; r < reorder_by_rail.size(); ++r) {
    if (r) out << ",";
    AppendStageJson(&out, ("rail" + std::to_string(r)).c_str(),
                    reorder_by_rail[r]);
  }
  out << "]}";
  return out.str();
}

}  // namespace exs::spans
