// Minimal JSON reader.
//
// The observability layer *emits* JSON (metrics snapshots, Chrome trace
// timelines); tests must parse it back to prove the output is well formed
// rather than merely string-matching.  This is a small strict RFC 8259
// reader — objects keep insertion order, numbers are doubles — and is not
// meant as a general-purpose library.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace exs::json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<Value> array_items;
  std::vector<std::pair<std::string, Value>> object_items;

  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsNumber() const { return type == Type::kNumber; }
  bool IsString() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;
};

/// Parse `text` into `*out`.  On failure returns false and describes the
/// problem (with offset) in `*error` when non-null.  Trailing garbage
/// after the top-level value is an error.
bool Parse(const std::string& text, Value* out, std::string* error = nullptr);

}  // namespace exs::json
