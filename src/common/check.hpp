// Invariant checking that is always on.
//
// Protocol-state invariants (phase monotonicity, sequence agreement, credit
// non-negativity) guard against silent data corruption; violating one is a
// bug in this library or in a caller's use of it, so we throw a dedicated
// exception type that tests can assert on and applications can report.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace exs {

class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

[[noreturn]] inline void FailCheck(const char* condition, const char* file,
                                   int line, const std::string& detail) {
  std::ostringstream oss;
  oss << "invariant violated: " << condition << " at " << file << ":" << line;
  if (!detail.empty()) oss << " — " << detail;
  throw InvariantViolation(oss.str());
}

}  // namespace exs

#define EXS_CHECK(cond)                                          \
  do {                                                           \
    if (!(cond)) ::exs::FailCheck(#cond, __FILE__, __LINE__, {}); \
  } while (0)

#define EXS_CHECK_MSG(cond, msg)                                  \
  do {                                                            \
    if (!(cond)) {                                                \
      std::ostringstream exs_check_oss_;                          \
      exs_check_oss_ << msg;                                      \
      ::exs::FailCheck(#cond, __FILE__, __LINE__,                 \
                       exs_check_oss_.str());                     \
    }                                                             \
  } while (0)
