// Read-only access to a simulated clock.
//
// The discrete-event scheduler owns simulated time, but common-layer
// components — metrics samplers, log timestamping, the ring-buffer
// occupancy probe — must not depend on simnet.  They take a SimClock
// instead; simnet::EventScheduler implements it.
#pragma once

#include "common/units.hpp"

namespace exs {

class SimClock {
 public:
  virtual ~SimClock() = default;
  virtual SimTime Now() const = 0;
};

}  // namespace exs
