// Index arithmetic for a circular byte buffer.
//
// The stream protocol's intermediate receive buffer is a circular region of
// registered memory at the receiver.  The *sender* tracks a write cursor and
// a free-byte count (`b_s` in the paper); the *receiver* tracks a read
// cursor and a full-byte count (`b_r`).  Both sides therefore need the same
// cursor arithmetic but neither owns the bytes through this class, so this
// is a pure index machine: the payload lives in a registered memory region
// owned by the receiver.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/metrics.hpp"
#include "common/sim_clock.hpp"

namespace exs {

class RingCursor {
 public:
  RingCursor() = default;
  explicit RingCursor(std::uint64_t capacity) : capacity_(capacity) {}

  /// Record the occupancy (used bytes) into `series` at every cursor
  /// movement, timestamped by `clock`.  Pass nullptrs to detach.  The
  /// current occupancy is sampled immediately so the series starts at the
  /// attach instant, not at the first transfer.
  void SetOccupancyProbe(metrics::TimeWeightedSeries* series,
                         const SimClock* clock) {
    probe_ = series;
    clock_ = clock;
    Sample();
  }

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return used_; }
  std::uint64_t free() const { return capacity_ - used_; }
  bool Empty() const { return used_ == 0; }
  bool Full() const { return used_ == capacity_; }

  /// Offset at which the next write lands.
  std::uint64_t write_offset() const { return write_; }
  /// Offset from which the next read drains.
  std::uint64_t read_offset() const { return read_; }

  /// Largest write that can be performed as a single contiguous copy:
  /// bounded by free space and by the distance to the wrap point.
  std::uint64_t ContiguousWritable() const {
    std::uint64_t to_wrap = capacity_ - write_;
    return free() < to_wrap ? free() : to_wrap;
  }

  /// Largest read that can be performed as a single contiguous copy.
  std::uint64_t ContiguousReadable() const {
    std::uint64_t to_wrap = capacity_ - read_;
    return used_ < to_wrap ? used_ : to_wrap;
  }

  /// Advance the write cursor.  `n` must not exceed ContiguousWritable().
  void CommitWrite(std::uint64_t n) {
    assert(n <= ContiguousWritable());
    write_ = Advance(write_, n);
    used_ += n;
    Sample();
  }

  /// Advance the read cursor.  `n` must not exceed ContiguousReadable().
  void CommitRead(std::uint64_t n) {
    assert(n <= ContiguousReadable());
    read_ = Advance(read_, n);
    used_ -= n;
    Sample();
  }

  /// Return free space to the pool without moving the read cursor — used by
  /// the sender side, whose "reads" are remote and reported via ACKs.
  void ReleaseFree(std::uint64_t n) {
    assert(n <= used_);
    read_ = Advance(read_, n);
    used_ -= n;
    Sample();
  }

  /// Overwrite all three cursors at once.  Used by stream resume: the
  /// sender's remote view (`b_s`) is rebuilt from the receiver's
  /// authoritative cursors, discarding writes that were posted but never
  /// committed in delivery order at the receiver.
  void Restore(std::uint64_t write, std::uint64_t read, std::uint64_t used) {
    assert(write < (capacity_ == 0 ? 1 : capacity_) || write == 0);
    assert(read < (capacity_ == 0 ? 1 : capacity_) || read == 0);
    assert(used <= capacity_);
    write_ = write;
    read_ = read;
    used_ = used;
    Sample();
  }

 private:
  std::uint64_t Advance(std::uint64_t cursor, std::uint64_t n) const {
    cursor += n;
    return cursor >= capacity_ ? cursor - capacity_ : cursor;
  }

  void Sample() {
    if (probe_ != nullptr) {
      probe_->Record(clock_->Now(), static_cast<double>(used_));
    }
  }

  std::uint64_t capacity_ = 0;
  std::uint64_t write_ = 0;
  std::uint64_t read_ = 0;
  std::uint64_t used_ = 0;
  metrics::TimeWeightedSeries* probe_ = nullptr;
  const SimClock* clock_ = nullptr;
};

}  // namespace exs
