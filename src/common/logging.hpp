// Minimal leveled logging.  Protocol traces are invaluable when debugging
// ADVERT/phase interactions, but must cost nothing when disabled, so the
// macro evaluates its stream expression only when the level is active.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace exs {

class SimClock;

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Process-wide log threshold.  Defaults to kWarn; tests and the EXS_LOG
/// environment variable can lower it to kTrace for protocol traces.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off"; anything else -> kWarn.
LogLevel ParseLogLevel(const std::string& name);

/// When a clock is registered, every log line is stamped with the current
/// simulated time (microseconds), so debug logs line up with metrics
/// snapshots and timeline exports.  Simulation registers its scheduler on
/// construction and clears it on destruction; with several simulations
/// alive, the most recent wins.
void SetLogClock(const SimClock* clock);
const SimClock* GetLogClock();

void LogLine(LogLevel level, const std::string& message);

}  // namespace exs

#define EXS_LOG(level, expr)                                    \
  do {                                                          \
    if (static_cast<int>(level) >=                              \
        static_cast<int>(::exs::GetLogLevel())) {               \
      std::ostringstream exs_log_oss_;                          \
      exs_log_oss_ << expr;                                     \
      ::exs::LogLine(level, exs_log_oss_.str());                \
    }                                                           \
  } while (0)

#define EXS_TRACE(expr) EXS_LOG(::exs::LogLevel::kTrace, expr)
#define EXS_DEBUG(expr) EXS_LOG(::exs::LogLevel::kDebug, expr)
#define EXS_INFO(expr) EXS_LOG(::exs::LogLevel::kInfo, expr)
#define EXS_WARN(expr) EXS_LOG(::exs::LogLevel::kWarn, expr)
#define EXS_ERROR(expr) EXS_LOG(::exs::LogLevel::kError, expr)
