#include "common/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace exs::metrics {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

std::size_t Histogram::BucketIndex(std::uint64_t v) {
  if (v == 0) return 0;
  return static_cast<std::size_t>(std::bit_width(v));
}

std::uint64_t Histogram::BucketLowerBound(std::size_t bucket) {
  if (bucket == 0) return 0;
  return std::uint64_t{1} << (bucket - 1);
}

void Histogram::Record(std::uint64_t v) {
  ++buckets_[BucketIndex(v)];
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  ++count_;
  sum_ += v;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min());
  if (p >= 100.0) return static_cast<double>(max_);
  double rank = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    double before = static_cast<double>(cumulative);
    cumulative += buckets_[b];
    if (static_cast<double>(cumulative) < rank) continue;
    // Interpolate inside [lower, upper) by the fraction of the bucket's
    // population below the rank.
    double lower = static_cast<double>(BucketLowerBound(b));
    double upper = b + 1 < kBuckets
                       ? static_cast<double>(BucketLowerBound(b + 1))
                       : lower * 2.0;
    double fraction =
        (rank - before) / static_cast<double>(buckets_[b]);
    return lower + (upper - lower) * fraction;
  }
  return static_cast<double>(max_);
}

// ---------------------------------------------------------------------------
// TimeWeightedSeries
// ---------------------------------------------------------------------------

void TimeWeightedSeries::Record(SimTime now, double value) {
  if (!started_) {
    started_ = true;
    start_ = now;
    min_ = max_ = value;
  } else {
    integral_ += last_value_ * static_cast<double>(now - last_time_);
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  last_time_ = now;
  last_value_ = value;
  ++count_;

  if (!samples_.empty() && samples_.back().time == now) {
    samples_.back().value = value;  // keep the value the instant settled on
    return;
  }
  if (!samples_.empty() &&
      now - samples_.back().time < sample_stride_) {
    return;
  }
  samples_.push_back(Sample{now, value});
  if (samples_.size() >= kMaxSamples) {
    // Halve resolution: keep every other sample and require twice the
    // spacing from here on.  Deterministic, and the exact integral above
    // is unaffected.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < samples_.size(); i += 2) {
      samples_[kept++] = samples_[i];
    }
    samples_.resize(kept);
    SimDuration span = samples_.back().time - samples_.front().time;
    SimDuration derived = span * 2 / static_cast<SimDuration>(kMaxSamples);
    sample_stride_ = std::max<SimDuration>(
        {SimDuration{1}, sample_stride_ * 2, derived});
  }
}

double TimeWeightedSeries::Average(SimTime now) const {
  if (!started_) return 0.0;
  SimDuration span = now - start_;
  if (span <= 0) return last_value_;
  double integral =
      integral_ + last_value_ * static_cast<double>(now - last_time_);
  return integral / static_cast<double>(span);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

template <typename T>
T& GetOrCreate(std::map<std::string, Registry::Named<T>>* map,
               const std::string& name, const std::string& unit) {
  auto it = map->find(name);
  if (it == map->end()) {
    it = map->emplace(name, Registry::Named<T>{unit, std::make_unique<T>()})
             .first;
  }
  return *it->second.instrument;
}

}  // namespace

Counter& Registry::GetCounter(const std::string& name,
                              const std::string& unit) {
  return GetOrCreate(&counters_, name, unit);
}

Gauge& Registry::GetGauge(const std::string& name, const std::string& unit) {
  return GetOrCreate(&gauges_, name, unit);
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  const std::string& unit) {
  return GetOrCreate(&histograms_, name, unit);
}

TimeWeightedSeries& Registry::GetSeries(const std::string& name,
                                        const std::string& unit) {
  return GetOrCreate(&series_, name, unit);
}

std::string FormatJsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

namespace {

void AppendField(std::string* out, const char* key, const std::string& value,
                 bool* first) {
  if (!*first) *out += ",";
  *first = false;
  AppendJsonString(out, key);
  *out += ":";
  *out += value;
}

std::string U64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string Registry::ToJson(SimTime now) const {
  std::string out = "{";
  out += "\"counters\":{";
  bool first_entry = true;
  for (const auto& [name, entry] : counters_) {
    if (!first_entry) out += ",";
    first_entry = false;
    AppendJsonString(&out, name);
    out += ":{\"unit\":";
    AppendJsonString(&out, entry.unit);
    out += ",\"value\":" + U64(entry.instrument->value()) + "}";
  }
  out += "},\"gauges\":{";
  first_entry = true;
  for (const auto& [name, entry] : gauges_) {
    if (!first_entry) out += ",";
    first_entry = false;
    AppendJsonString(&out, name);
    out += ":{\"unit\":";
    AppendJsonString(&out, entry.unit);
    out += ",\"value\":" + FormatJsonNumber(entry.instrument->value()) + "}";
  }
  out += "},\"histograms\":{";
  first_entry = true;
  for (const auto& [name, entry] : histograms_) {
    const Histogram& h = *entry.instrument;
    if (!first_entry) out += ",";
    first_entry = false;
    AppendJsonString(&out, name);
    out += ":{";
    bool f = true;
    std::string unit_json;
    AppendJsonString(&unit_json, entry.unit);
    AppendField(&out, "unit", unit_json, &f);
    AppendField(&out, "count", U64(h.count()), &f);
    AppendField(&out, "sum", U64(h.sum()), &f);
    AppendField(&out, "min", U64(h.min()), &f);
    AppendField(&out, "max", U64(h.max()), &f);
    AppendField(&out, "mean", FormatJsonNumber(h.Mean()), &f);
    AppendField(&out, "p50", FormatJsonNumber(h.Percentile(50)), &f);
    AppendField(&out, "p90", FormatJsonNumber(h.Percentile(90)), &f);
    AppendField(&out, "p99", FormatJsonNumber(h.Percentile(99)), &f);
    AppendField(&out, "p999", FormatJsonNumber(h.Percentile(99.9)), &f);
    std::string buckets = "[";
    bool first_bucket = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets()[b] == 0) continue;
      if (!first_bucket) buckets += ",";
      first_bucket = false;
      buckets += "[";
      buckets += U64(Histogram::BucketLowerBound(b));
      buckets += ",";
      buckets += U64(h.buckets()[b]);
      buckets += "]";
    }
    buckets += "]";
    AppendField(&out, "buckets", buckets, &f);
    out += "}";
  }
  out += "},\"series\":{";
  first_entry = true;
  for (const auto& [name, entry] : series_) {
    const TimeWeightedSeries& s = *entry.instrument;
    if (!first_entry) out += ",";
    first_entry = false;
    AppendJsonString(&out, name);
    out += ":{";
    bool f = true;
    std::string unit_json;
    AppendJsonString(&unit_json, entry.unit);
    AppendField(&out, "unit", unit_json, &f);
    AppendField(&out, "count", U64(s.count()), &f);
    AppendField(&out, "avg", FormatJsonNumber(s.Average(now)), &f);
    AppendField(&out, "min", FormatJsonNumber(s.min()), &f);
    AppendField(&out, "max", FormatJsonNumber(s.max()), &f);
    AppendField(&out, "last", FormatJsonNumber(s.last()), &f);
    std::string samples = "[";
    bool first_sample = true;
    for (const auto& sample : s.samples()) {
      if (!first_sample) samples += ",";
      first_sample = false;
      samples += "[";
      samples += U64(static_cast<std::uint64_t>(sample.time));
      samples += ",";
      samples += FormatJsonNumber(sample.value);
      samples += "]";
    }
    samples += "]";
    AppendField(&out, "samples", samples, &f);
    out += "}";
  }
  out += "}}";
  return out;
}

std::string Registry::ToCsv(SimTime now) const {
  std::string out = "name,kind,unit,field,value\n";
  auto row = [&out](const std::string& name, const char* kind,
                    const std::string& unit, const char* field,
                    const std::string& value) {
    out += name + "," + kind + "," + unit + "," + field + "," + value + "\n";
  };
  for (const auto& [name, entry] : counters_) {
    row(name, "counter", entry.unit, "value", U64(entry.instrument->value()));
  }
  for (const auto& [name, entry] : gauges_) {
    row(name, "gauge", entry.unit, "value",
        FormatJsonNumber(entry.instrument->value()));
  }
  for (const auto& [name, entry] : histograms_) {
    const Histogram& h = *entry.instrument;
    row(name, "histogram", entry.unit, "count", U64(h.count()));
    row(name, "histogram", entry.unit, "sum", U64(h.sum()));
    row(name, "histogram", entry.unit, "min", U64(h.min()));
    row(name, "histogram", entry.unit, "max", U64(h.max()));
    row(name, "histogram", entry.unit, "mean", FormatJsonNumber(h.Mean()));
    row(name, "histogram", entry.unit, "p50",
        FormatJsonNumber(h.Percentile(50)));
    row(name, "histogram", entry.unit, "p90",
        FormatJsonNumber(h.Percentile(90)));
    row(name, "histogram", entry.unit, "p99",
        FormatJsonNumber(h.Percentile(99)));
    row(name, "histogram", entry.unit, "p999",
        FormatJsonNumber(h.Percentile(99.9)));
  }
  for (const auto& [name, entry] : series_) {
    const TimeWeightedSeries& s = *entry.instrument;
    row(name, "series", entry.unit, "count", U64(s.count()));
    row(name, "series", entry.unit, "avg", FormatJsonNumber(s.Average(now)));
    row(name, "series", entry.unit, "min", FormatJsonNumber(s.min()));
    row(name, "series", entry.unit, "max", FormatJsonNumber(s.max()));
    row(name, "series", entry.unit, "last", FormatJsonNumber(s.last()));
  }
  return out;
}

}  // namespace exs::metrics
