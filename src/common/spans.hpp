// Causal chunk tracing: end-to-end latency provenance for the EXS stack.
//
// Every WRITE-WITH-IMM chunk (and every coalesced aggregate) can carry a
// trace id and accumulate picosecond-stamped stage timestamps as it flows
// sender → wire → receiver.  The stages form a contiguous partition of
// [application submit, delivery], so per-chunk stage durations *sum to the
// end-to-end latency by construction* — the invariant checker re-verifies
// that conservation from the stored record (CheckSpanConservation), which
// catches missing or non-monotonic instrumentation rather than arithmetic.
//
// Provenance is measured at the delivery boundary (the instant the receive
// completion is pushed onto the application's event queue), NOT at the
// sender's work-request completion: Borrill's "completion fallacy" — a send
// completion only proves the source buffer is reusable, never that the
// peer received anything — is why `t_tx_complete` is kept as a comparator
// but excluded from the conservation sum.
//
// The collector never schedules simulator events and never charges CPU
// cost, so attaching it cannot perturb timing: golden-trace fingerprints
// stay bit-identical whether sampling is on or off.  Cost is bounded by
// deterministic seed-derived sampling (sample_period = N keeps ~1/N of
// chunks, chosen by a hash of the seed and the chunk ordinal, so the same
// seed always samples the same chunks).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace exs::spans {

/// The stage catalogue.  Stages are adjacent timestamp differences in
/// chunk order; see ChunkRecord for the timestamp each boundary uses.
enum class Stage : std::uint8_t {
  kTxStaging = 0,  ///< submit → flush: residence in the coalescing buffer
  kTxQueue = 1,    ///< flush → post: chunk queue + credit/ADVERT wait + rail queue
  kWire = 2,       ///< post → arrival: HCA FIFO, serialisation, propagation,
                   ///< receive-side HCA delivery overhead
  kRxReorder = 3,  ///< arrival → in-order processing: stripe reorder-buffer
                   ///< residence (the per-rail HoL-blocking wait; 0 when
                   ///< single-rail or already in order)
  kRxRing = 4,     ///< processing → first copy pass: intermediate-ring
                   ///< residence before the drain reaches it (0 for direct)
  kRxCopy = 5,     ///< copy pass start → copy complete (0 for direct)
  kRxDeliver = 6,  ///< copy complete → receive completion pushed to the app
};

inline constexpr std::size_t kStageCount = 7;

const char* StageName(Stage s);

/// Sentinel for "timestamp not recorded yet".
inline constexpr SimTime kNoTime = -1;

/// One sampled chunk's full provenance record.
struct ChunkRecord {
  std::uint64_t id = 0;           ///< trace id; doubles as the Perfetto flow id
  std::uint64_t tx_endpoint = 0;  ///< RegisterEndpoint id of the sender
  std::uint64_t rx_endpoint = 0;  ///< RegisterEndpoint id of the receiver
  std::uint64_t len = 0;          ///< payload bytes
  std::uint32_t tx_rail = 0;      ///< rail the chunk was posted on
  std::uint32_t rx_rail = 0;      ///< rail it arrived on (== tx_rail)
  bool indirect = false;          ///< landed in the intermediate ring
  bool coalesced = false;         ///< aggregate of staged small sends

  SimTime t_submit = kNoTime;    ///< application Send() accepted the bytes
  SimTime t_flush = kNoTime;     ///< left the coalescing stage (== t_submit
                                 ///< when never staged)
  SimTime t_post = kNoTime;      ///< WR posted to the verbs layer
  SimTime t_arrive = kNoTime;    ///< receive completion seen by StreamRx
  SimTime t_process = kNoTime;   ///< processed in stream order
  SimTime t_ring_end = kNoTime;  ///< first ring copy pass covering the chunk
                                 ///< begins (t_process for direct)
  SimTime t_copied = kNoTime;    ///< last byte memcpy'd out of the ring
                                 ///< (t_process for direct)
  SimTime t_deliver = kNoTime;   ///< covering receive completion pushed
  SimTime t_tx_complete = kNoTime;  ///< sender-side WR completion (the
                                    ///< "completion fallacy" comparator;
                                    ///< NOT part of the conservation sum)

  bool delivered() const { return t_deliver != kNoTime; }
  /// Duration of one stage; 0 if either boundary is unset.
  SimDuration StageDuration(Stage s) const;
  /// t_deliver − t_submit (0 if undelivered).
  SimDuration EndToEnd() const;
};

/// Exact per-stage distribution summary.  Percentiles are nearest-rank
/// over the exact sorted durations — no bucketing, so a fixed-seed run
/// renders bit-identically every time.
struct StageStats {
  std::uint64_t count = 0;
  std::uint64_t sum_ps = 0;
  SimDuration min_ps = 0;
  SimDuration max_ps = 0;
  SimDuration p50_ps = 0;
  SimDuration p99_ps = 0;
  SimDuration p999_ps = 0;
};

/// Summarise a duration sample into exact nearest-rank StageStats
/// (p50/p99/p999 over the sorted values — bit-stable for fixed seeds).
/// Sorts `durations` in place.  Shared by the latency report and every
/// harness that reports response-time percentiles (e.g. the RPC tier's
/// open-loop bench).
StageStats Summarise(std::vector<SimDuration>* durations);

/// The derived attribution report over all delivered sampled chunks.
struct LatencyReport {
  std::uint64_t chunks_delivered = 0;
  std::uint64_t chunks_sampled = 0;
  StageStats stages[kStageCount];
  StageStats end_to_end;
  /// Per-rail HoL blocking: the kRxReorder stage grouped by arrival rail.
  /// Index = rail number (vector sized to the highest rail seen + 1).
  std::vector<StageStats> reorder_by_rail;

  /// Fixed-width human table (the `tools/latency_report` output).
  std::string ToText() const;
  /// Deterministic JSON object (stable key order, integer picoseconds).
  std::string ToJson() const;
};

/// The collector.  One per simulation; endpoints (socket halves) register
/// by name, chunks are created at post time and accumulate timestamps via
/// the Note* calls.  Every call is O(1) (ids are dense indices); calls
/// with id 0 (unsampled) are no-ops, so instrumentation sites need no
/// null/sampling checks of their own.
class SpanCollector {
 public:
  /// `sample_period` keeps roughly 1 in N chunks (1 = every chunk).  The
  /// choice is a pure function of (seed, chunk ordinal), so reruns of the
  /// same seed sample the same chunks.
  explicit SpanCollector(std::uint64_t seed, std::uint64_t sample_period = 1);

  std::uint64_t RegisterEndpoint(const std::string& name);
  const std::vector<std::string>& endpoints() const { return endpoints_; }
  const std::string& EndpointName(std::uint64_t id) const;

  /// Sender side, at WR-post time.  Returns the trace id (0 = unsampled).
  std::uint64_t BeginChunk(std::uint64_t tx_endpoint, SimTime submit,
                           SimTime flush, SimTime post, std::uint64_t len,
                           bool indirect, bool coalesced, std::uint32_t rail);

  void NoteTxComplete(std::uint64_t id, SimTime now);
  void NoteArrive(std::uint64_t id, SimTime now, std::uint64_t rx_endpoint,
                  std::uint32_t rail);
  /// Marks in-order processing; for direct chunks this also closes the
  /// (empty) ring and copy stages.
  void NoteProcess(std::uint64_t id, SimTime now);
  void NoteRingCopyStart(std::uint64_t id, SimTime now);
  void NoteCopied(std::uint64_t id, SimTime now);
  void NoteDeliver(std::uint64_t id, SimTime now);

  ChunkRecord* Find(std::uint64_t id);
  const ChunkRecord* Find(std::uint64_t id) const;
  const std::vector<ChunkRecord>& chunks() const { return chunks_; }
  std::uint64_t chunks_seen() const { return chunks_seen_; }
  std::uint64_t seed() const { return seed_; }
  std::uint64_t sample_period() const { return sample_period_; }

  LatencyReport BuildReport() const;

 private:
  bool Sampled(std::uint64_t ordinal) const;

  std::uint64_t seed_;
  std::uint64_t sample_period_;
  std::uint64_t chunks_seen_ = 0;  ///< sampled or not
  std::vector<ChunkRecord> chunks_;
  std::vector<std::string> endpoints_;
};

}  // namespace exs::spans
