#include "common/json.hpp"

#include <cctype>
#include <cstdlib>

namespace exs::json {

const Value* Value::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_items) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Run(Value* out) {
    SkipWhitespace();
    if (!ParseValue(out)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(Value* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"':
        out->type = Value::Type::kString;
        return ParseString(&out->string_value);
      case 't':
      case 'f': return ParseLiteral(out);
      case 'n': return ParseLiteral(out);
      default: return ParseNumber(out);
    }
  }

  bool ParseLiteral(Value* out) {
    auto match = [this](const char* word) {
      std::size_t len = 0;
      while (word[len] != '\0') ++len;
      if (text_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      return true;
    };
    if (match("true")) {
      out->type = Value::Type::kBool;
      out->bool_value = true;
      return true;
    }
    if (match("false")) {
      out->type = Value::Type::kBool;
      out->bool_value = false;
      return true;
    }
    if (match("null")) {
      out->type = Value::Type::kNull;
      return true;
    }
    return Fail("bad literal");
  }

  bool ParseNumber(Value* out) {
    std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("bad number");
    char* end = nullptr;
    std::string token = text_.substr(start, pos_ - start);
    out->number_value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("bad number");
    out->type = Value::Type::kNumber;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // Basic-plane code points only; enough for the escapes this
          // repo's exporters ever emit (control characters).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseObject(Value* out) {
    if (!Consume('{')) return Fail("expected object");
    out->type = Value::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return true;
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWhitespace();
      Value v;
      if (!ParseValue(&v)) return false;
      out->object_items.emplace_back(std::move(key), std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(Value* out) {
    if (!Consume('[')) return Fail("expected array");
    out->type = Value::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return true;
    while (true) {
      SkipWhitespace();
      Value v;
      if (!ParseValue(&v)) return false;
      out->array_items.push_back(std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Parse(const std::string& text, Value* out, std::string* error) {
  Parser parser(text, error);
  return parser.Run(out);
}

}  // namespace exs::json
