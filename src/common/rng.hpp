// Deterministic pseudo-random number generation for workloads.
//
// We carry our own xoshiro256** generator (public-domain algorithm by
// Blackman & Vigna) instead of std::mt19937 so that workload streams are
// identical across standard-library implementations, and our own
// distribution transforms so results are bit-stable across platforms.
#pragma once

#include <cstdint>
#include <cmath>

namespace exs {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9d5c0ec5e731337bULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).  `bound` must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) {
    // Lemire's nearly-divisionless method with rejection for exactness.
    std::uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi) {
    return lo + NextBelow(hi - lo + 1);
  }

  /// Exponentially distributed value with the given mean.
  double NextExponential(double mean) {
    // Inverse-CDF; 1 - u avoids log(0).
    return -mean * std::log(1.0 - NextDouble());
  }

  bool NextBool(double p_true = 0.5) { return NextDouble() < p_true; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Message-size distribution used by the paper's blast tool: exponential,
/// truncated at a maximum, with a minimum of one byte.
class ExponentialSizeDistribution {
 public:
  ExponentialSizeDistribution(double mean_bytes, std::uint64_t max_bytes)
      : mean_(mean_bytes), max_(max_bytes) {}

  std::uint64_t Sample(Rng& rng) const {
    double v = rng.NextExponential(mean_);
    if (v < 1.0) return 1;
    auto bytes = static_cast<std::uint64_t>(v);
    return bytes > max_ ? max_ : bytes;
  }

  double mean() const { return mean_; }
  std::uint64_t max() const { return max_; }

 private:
  double mean_;
  std::uint64_t max_;
};

}  // namespace exs
