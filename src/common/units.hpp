// Time and data-size units used throughout the simulator and library.
//
// Simulated time is an integer count of picoseconds.  At FDR InfiniBand's
// 54.24 Gb/s data rate one byte serialises in ~147 ps, so picosecond
// resolution keeps per-byte rounding error out of throughput figures while
// int64_t still covers ~106 days of simulated time.
#pragma once

#include <cstdint>

namespace exs {

/// Simulated time in picoseconds.
using SimTime = std::int64_t;

/// Time differences share the representation of absolute times.
using SimDuration = std::int64_t;

inline constexpr SimDuration kPicosecond = 1;
inline constexpr SimDuration kNanosecond = 1'000;
inline constexpr SimDuration kMicrosecond = 1'000'000;
inline constexpr SimDuration kMillisecond = 1'000'000'000;
inline constexpr SimDuration kSecond = 1'000'000'000'000;

constexpr SimDuration Nanoseconds(double ns) {
  return static_cast<SimDuration>(ns * static_cast<double>(kNanosecond));
}
constexpr SimDuration Microseconds(double us) {
  return static_cast<SimDuration>(us * static_cast<double>(kMicrosecond));
}
constexpr SimDuration Milliseconds(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}
constexpr SimDuration Seconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double ToMicroseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}
constexpr double ToMilliseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/// Bandwidth expressed as bytes per simulated second.
struct Bandwidth {
  double bytes_per_second = 0.0;

  static constexpr Bandwidth BitsPerSecond(double bps) {
    return Bandwidth{bps / 8.0};
  }
  static constexpr Bandwidth GigabitsPerSecond(double gbps) {
    return BitsPerSecond(gbps * 1e9);
  }
  static constexpr Bandwidth MegabitsPerSecond(double mbps) {
    return BitsPerSecond(mbps * 1e6);
  }
  static constexpr Bandwidth BytesPerSecond(double bytes) {
    return Bandwidth{bytes};
  }
  static constexpr Bandwidth GigabytesPerSecond(double gb) {
    return Bandwidth{gb * 1e9};
  }

  constexpr double GigabitsPerSecondValue() const {
    return bytes_per_second * 8.0 / 1e9;
  }

  /// Time to serialise `bytes` at this rate.  A zero/negative bandwidth
  /// means "infinitely fast" and serialises in zero time.
  constexpr SimDuration TransmissionTime(std::uint64_t bytes) const {
    if (bytes_per_second <= 0.0) return 0;
    double seconds = static_cast<double>(bytes) / bytes_per_second;
    return static_cast<SimDuration>(seconds * static_cast<double>(kSecond));
  }
};

/// Throughput of `bytes` moved over duration `d`, in megabits per second —
/// the unit the paper's figures use.
constexpr double ThroughputMbps(std::uint64_t bytes, SimDuration d) {
  if (d <= 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / 1e6 / ToSeconds(d);
}

}  // namespace exs
