// Metrics instruments for a discrete-event simulation.
//
// The protocol's hot paths record into pre-resolved instrument pointers —
// no name lookups per event — and a Registry owns the instruments and
// renders deterministic JSON/CSV snapshots.  Everything is keyed on
// simulated time: the histograms bucket picosecond latencies, and the
// time-series sampler weights values by the sim-time they were held, which
// is the only averaging that makes sense under a discrete-event clock
// (a value held for 1 ms must count 10^6 times more than one held 1 ns).
//
// Determinism matters more than fidelity here: identical seeded runs must
// produce bit-identical snapshots, so sample retention uses a fixed
// capacity with deterministic stride doubling, never wall-clock or
// reservoir randomness.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_clock.hpp"
#include "common/units.hpp"

namespace exs::metrics {

/// Monotonically increasing event count (messages, bytes, switches).
class Counter {
 public:
  void Increment() { ++value_; }
  void Add(std::uint64_t n) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value (phase number, queue depth).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Log2-bucketed histogram for latencies and sizes.  Bucket 0 holds the
/// value 0; bucket b >= 1 holds values in [2^(b-1), 2^b).  64 buckets
/// cover the full uint64 range, so Record never clips.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void Record(std::uint64_t v);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value below which `p` percent of recordings fall, interpolated
  /// linearly inside the containing bucket.  p in [0, 100].
  double Percentile(double p) const;

  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }
  static std::size_t BucketIndex(std::uint64_t v);
  /// Smallest value the bucket counts.
  static std::uint64_t BucketLowerBound(std::size_t bucket);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Piecewise-constant value tracked against the simulated clock: Record()
/// states "the value is v from sim-time t onward".  The integral of the
/// step function gives exact time-weighted averages regardless of how many
/// samples are retained for plotting.
class TimeWeightedSeries {
 public:
  struct Sample {
    SimTime time = 0;
    double value = 0.0;
  };

  /// Retained-sample capacity; when reached, every other sample is dropped
  /// and the minimum retention stride doubles (deterministic decimation).
  static constexpr std::size_t kMaxSamples = 2048;

  void Record(SimTime now, double value);

  /// Time-weighted mean over [first Record, now].  Zero before any Record.
  double Average(SimTime now) const;
  double last() const { return last_value_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  std::uint64_t count() const { return count_; }
  SimTime start_time() const { return start_; }

  const std::vector<Sample>& samples() const { return samples_; }

 private:
  bool started_ = false;
  SimTime start_ = 0;
  SimTime last_time_ = 0;
  double last_value_ = 0.0;
  double integral_ = 0.0;  ///< of value dt since start_
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t count_ = 0;
  std::vector<Sample> samples_;
  SimDuration sample_stride_ = 0;
};

/// Named instrument store.  Get* creates on first use and returns the same
/// instrument afterwards; snapshots iterate in name order, so output is
/// stable across runs.
class Registry {
 public:
  Counter& GetCounter(const std::string& name, const std::string& unit = "");
  Gauge& GetGauge(const std::string& name, const std::string& unit = "");
  Histogram& GetHistogram(const std::string& name,
                          const std::string& unit = "");
  TimeWeightedSeries& GetSeries(const std::string& name,
                                const std::string& unit = "");

  template <typename T>
  struct Named {
    std::string unit;
    std::unique_ptr<T> instrument;
  };

  const std::map<std::string, Named<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Named<Gauge>>& gauges() const { return gauges_; }
  const std::map<std::string, Named<Histogram>>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, Named<TimeWeightedSeries>>& series() const {
    return series_;
  }

  /// JSON object {"counters":{...},"gauges":{...},"histograms":{...},
  /// "series":{...}}.  `now` closes the open interval of every series.
  std::string ToJson(SimTime now) const;

  /// Flat rows "name,kind,unit,field,value" (one row per scalar).
  std::string ToCsv(SimTime now) const;

 private:
  std::map<std::string, Named<Counter>> counters_;
  std::map<std::string, Named<Gauge>> gauges_;
  std::map<std::string, Named<Histogram>> histograms_;
  std::map<std::string, Named<TimeWeightedSeries>> series_;
};

/// Deterministic JSON number rendering shared by the exporters: integral
/// values print without a fraction, everything else with enough digits to
/// round-trip.
std::string FormatJsonNumber(double v);
void AppendJsonString(std::string* out, const std::string& s);

}  // namespace exs::metrics
