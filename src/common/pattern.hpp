// Position-dependent byte patterns for end-to-end data-integrity checks.
//
// A byte stream's defining property is that byte k of the receive stream is
// byte k of the send stream, regardless of how transfers were split between
// direct and indirect paths.  Filling buffers with a function of the stream
// offset lets tests detect reordering, duplication, and loss — not just
// corruption.
#pragma once

#include <cstddef>
#include <cstdint>

namespace exs {

/// Deterministic pattern byte for stream offset `offset` under `seed`.
inline std::uint8_t PatternByte(std::uint64_t offset, std::uint64_t seed) {
  std::uint64_t x = offset * 0x9e3779b97f4a7c15ULL + seed;
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 32;
  return static_cast<std::uint8_t>(x);
}

/// Fill `buf[0..len)` with the pattern for stream offsets starting at
/// `stream_offset`.
inline void FillPattern(void* buf, std::size_t len, std::uint64_t stream_offset,
                        std::uint64_t seed) {
  auto* p = static_cast<std::uint8_t*>(buf);
  for (std::size_t i = 0; i < len; ++i) {
    p[i] = PatternByte(stream_offset + i, seed);
  }
}

/// Return the first mismatching index, or `len` if the buffer matches the
/// pattern for stream offsets starting at `stream_offset`.
inline std::size_t VerifyPattern(const void* buf, std::size_t len,
                                 std::uint64_t stream_offset,
                                 std::uint64_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  for (std::size_t i = 0; i < len; ++i) {
    if (p[i] != PatternByte(stream_offset + i, seed)) return i;
  }
  return len;
}

}  // namespace exs
