#include "common/logging.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/sim_clock.hpp"
#include "common/units.hpp"

namespace exs {
namespace {

const SimClock* log_clock = nullptr;

LogLevel InitialLevel() {
  if (const char* env = std::getenv("EXS_LOG")) {
    return ParseLogLevel(env);
  }
  return LogLevel::kWarn;
}

LogLevel& MutableLevel() {
  static LogLevel level = InitialLevel();
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return MutableLevel(); }
void SetLogLevel(LogLevel level) { MutableLevel() = level; }

LogLevel ParseLogLevel(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

void SetLogClock(const SimClock* clock) { log_clock = clock; }
const SimClock* GetLogClock() { return log_clock; }

void LogLine(LogLevel level, const std::string& message) {
  if (log_clock != nullptr) {
    char stamp[32];
    std::snprintf(stamp, sizeof stamp, "%.3f",
                  ToMicroseconds(log_clock->Now()));
    std::cerr << "[" << LevelName(level) << " " << stamp << "us] " << message
              << "\n";
    return;
  }
  std::cerr << "[" << LevelName(level) << "] " << message << "\n";
}

}  // namespace exs
