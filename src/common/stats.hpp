// Small-sample statistics: mean and 95% confidence interval half-width,
// matching the paper's "average and 95% confidence interval" over 10 runs.
#pragma once

#include <cstddef>
#include <vector>

namespace exs {

/// Welford online accumulator for mean/variance.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::size_t Count() const { return n_; }
  double Mean() const { return mean_; }
  double Min() const { return min_; }
  double Max() const { return max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double Variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double StdDev() const;

  /// Half-width of the 95% confidence interval for the mean, using
  /// Student's t quantiles for small n.  Returns 0 for n < 2.
  double ConfidenceHalfWidth95() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Convenience: accumulate a vector of samples.
RunningStats Summarize(const std::vector<double>& samples);

/// Two-sided 97.5% Student t quantile for `dof` degrees of freedom.
double StudentT975(std::size_t dof);

}  // namespace exs
