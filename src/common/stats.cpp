#include "common/stats.hpp"

#include <array>
#include <cmath>

namespace exs {

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double StudentT975(std::size_t dof) {
  // Table of two-sided 95% (one-sided 97.5%) critical values.
  static constexpr std::array<double, 31> kTable = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
      2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
      2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
      2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  if (dof == 0) return 0.0;
  if (dof < kTable.size()) return kTable[dof];
  if (dof < 40) return 2.030;
  if (dof < 60) return 2.009;
  if (dof < 120) return 1.990;
  return 1.960;
}

double RunningStats::ConfidenceHalfWidth95() const {
  if (n_ < 2) return 0.0;
  double sem = StdDev() / std::sqrt(static_cast<double>(n_));
  return StudentT975(n_ - 1) * sem;
}

RunningStats Summarize(const std::vector<double>& samples) {
  RunningStats s;
  for (double x : samples) s.Add(x);
  return s;
}

}  // namespace exs
