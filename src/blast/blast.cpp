#include "blast/blast.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <unordered_map>

#include "common/check.hpp"
#include "common/pattern.hpp"
#include "common/rng.hpp"

namespace exs::blast {
namespace {

bool CaptureMetrics(const BlastConfig& c) {
  return c.capture_metrics || !c.metrics_json_path.empty();
}

bool CaptureTimeline(const BlastConfig& c) {
  return c.capture_timeline || !c.timeline_json_path.empty();
}

/// Write exporter output to `path`; "-" streams to stdout, "" is a no-op.
void WriteOutput(const std::string& path, const std::string& content) {
  if (path.empty()) return;
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    std::fputc('\n', stdout);
    return;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  EXS_CHECK_MSG(out.good(), "cannot open output file: " << path);
  out << content << '\n';
  EXS_CHECK_MSG(out.good(), "write failed: " << path);
}

/// Per-run driver: owns the simulation, the socket pair, and the client /
/// server application state machines, which react to completion events the
/// way the real blast tool's event loop does.
class BlastRun {
 public:
  explicit BlastRun(const BlastConfig& config)
      : config_(config),
        sim_(config.profile, config.seed, config.carry_payload) {
    EXS_CHECK_MSG(!config.verify_data || config.carry_payload,
                  "verify_data requires carry_payload");
    EXS_CHECK(config.outstanding_sends > 0 && config.outstanding_recvs > 0);
    EXS_CHECK(config.message_count > 0);

    auto pair = sim_.CreateConnectedPair(config.socket_type, config.stream);
    client_ = pair.first;
    server_ = pair.second;

    if (CaptureTimeline(config_)) {
      // Spans and instants come from the trace logs; cap them so a long
      // blast cannot grow the log without bound (drops are counted).
      client_->EnableTracing(
          static_cast<std::size_t>(config_.trace_event_capacity));
      server_->EnableTracing(
          static_cast<std::size_t>(config_.trace_event_capacity));
    }

    GenerateSizes();
    AllocateBuffers();
    burst_remaining_ = config_.burst_messages;  // first burst starts full
  }

  BlastResult Run() {
    // The server posts its receive window at time zero; the client starts
    // after the configured head start.
    server_->events().SetHandler(
        [this](const Event& ev) { OnServerEvent(ev); });
    client_->events().SetHandler(
        [this](const Event& ev) { OnClientEvent(ev); });

    sim_.scheduler().ScheduleAt(0, [this] { PostInitialRecvs(); });
    sim_.scheduler().ScheduleAfter(config_.client_start_delay,
                                   [this] { StartClient(); });
    sim_.Run();

    EXS_CHECK_MSG(bytes_received_ == total_bytes_,
                  "blast did not deliver every byte (" << bytes_received_
                      << " of " << total_bytes_ << ")");
    return BuildResult();
  }

 private:
  void GenerateSizes() {
    sizes_.reserve(config_.message_count);
    if (config_.fixed_message_bytes != 0) {
      sizes_.assign(config_.message_count, config_.fixed_message_bytes);
    } else {
      Rng rng(config_.seed * 0x51ed2701u + 17);
      ExponentialSizeDistribution dist(config_.exponential_mean_bytes,
                                       config_.max_message_bytes);
      ExponentialSizeDistribution shifted(
          config_.shifted_mean_bytes > 0 ? config_.shifted_mean_bytes
                                         : config_.exponential_mean_bytes,
          config_.max_message_bytes);
      for (std::uint64_t i = 0; i < config_.message_count; ++i) {
        bool use_shifted = config_.shifted_mean_bytes > 0 &&
                           i >= config_.shift_at_message;
        sizes_.push_back(use_shifted ? shifted.Sample(rng)
                                     : dist.Sample(rng));
      }
    }
    total_bytes_ = 0;
    max_size_ = 0;
    for (std::uint64_t s : sizes_) {
      total_bytes_ += s;
      max_size_ = std::max(max_size_, s);
    }
  }

  void AllocateBuffers() {
    send_slab_.resize(static_cast<std::size_t>(config_.outstanding_sends) *
                      max_size_);
    recv_slab_.resize(static_cast<std::size_t>(config_.outstanding_recvs) *
                      config_.recv_buffer_bytes);
    // Register the slabs up front — the explicit-registration, zero-copy
    // usage pattern the ES-API is designed for.
    client_->RegisterMemory(send_slab_.data(), send_slab_.size());
    server_->RegisterMemory(recv_slab_.data(), recv_slab_.size());
    free_send_buffers_.resize(config_.outstanding_sends);
    for (std::uint32_t i = 0; i < config_.outstanding_sends; ++i) {
      free_send_buffers_[i] = i;
    }
  }

  std::uint8_t* SendBuffer(std::uint32_t i) {
    return send_slab_.data() + static_cast<std::size_t>(i) * max_size_;
  }
  std::uint8_t* RecvBuffer(std::uint32_t i) {
    return recv_slab_.data() +
           static_cast<std::size_t>(i) * config_.recv_buffer_bytes;
  }

  void PostInitialRecvs() {
    for (std::uint32_t i = 0; i < config_.outstanding_recvs; ++i) {
      PostRecv(i);
    }
  }

  void PostRecv(std::uint32_t buffer_index) {
    std::uint64_t id =
        server_->Recv(RecvBuffer(buffer_index), config_.recv_buffer_bytes);
    recv_buffer_of_[id] = buffer_index;
  }

  void StartClient() {
    start_time_ = sim_.Now();
    sender_busy_start_ = sim_.fabric().node(0).cpu().BusyTime();
    receiver_busy_start_ = sim_.fabric().node(1).cpu().BusyTime();
    std::uint32_t initial = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        config_.outstanding_sends, config_.message_count));
    for (std::uint32_t i = 0; i < initial; ++i) PostNextSend();
  }

  void PostNextSend() {
    if (next_message_ >= config_.message_count) return;
    // Bursty traffic: pause at burst boundaries and resume after the idle
    // period, refilling the send window.
    if (config_.burst_messages > 0 && burst_remaining_ == 0) {
      if (!burst_resume_scheduled_) {
        burst_resume_scheduled_ = true;
        sim_.scheduler().ScheduleAfter(config_.burst_idle, [this] {
          burst_resume_scheduled_ = false;
          burst_remaining_ = config_.burst_messages;
          std::uint32_t window = static_cast<std::uint32_t>(
              std::min<std::uint64_t>(free_send_buffers_.size(),
                                      config_.message_count - next_message_));
          for (std::uint32_t i = 0; i < window; ++i) PostNextSend();
        });
      }
      return;
    }
    if (config_.burst_messages > 0) --burst_remaining_;
    EXS_CHECK(!free_send_buffers_.empty());
    std::uint32_t buf = free_send_buffers_.back();
    free_send_buffers_.pop_back();

    std::uint64_t size = sizes_[next_message_];
    std::uint8_t* mem = SendBuffer(buf);
    if (config_.verify_data) {
      FillPattern(mem, size, send_stream_offset_, config_.seed);
    }
    send_stream_offset_ += size;
    ++next_message_;

    std::uint64_t id = client_->Send(mem, size);
    send_buffer_of_[id] = buf;
  }

  void OnClientEvent(const Event& ev) {
    EXS_CHECK(ev.type == EventType::kSendComplete);
    auto it = send_buffer_of_.find(ev.id);
    EXS_CHECK(it != send_buffer_of_.end());
    free_send_buffers_.push_back(it->second);
    send_buffer_of_.erase(it);
    ++messages_completed_;
    PostNextSend();
  }

  void OnServerEvent(const Event& ev) {
    EXS_CHECK(ev.type == EventType::kRecvComplete);
    auto it = recv_buffer_of_.find(ev.id);
    EXS_CHECK(it != recv_buffer_of_.end());
    std::uint32_t buf = it->second;
    recv_buffer_of_.erase(it);

    if (config_.verify_data) {
      std::size_t ok = VerifyPattern(RecvBuffer(buf), ev.bytes,
                                     recv_stream_offset_, config_.seed);
      EXS_CHECK_MSG(ok == ev.bytes, "payload mismatch at stream offset "
                                        << recv_stream_offset_ + ok);
    }
    recv_stream_offset_ += ev.bytes;
    bytes_received_ += ev.bytes;

    if (bytes_received_ >= total_bytes_) {
      end_time_ = sim_.Now();
      sender_busy_end_ = sim_.fabric().node(0).cpu().BusyTime();
      receiver_busy_end_ = sim_.fabric().node(1).cpu().BusyTime();
      return;  // done: stop reposting
    }
    PostRecv(buf);
  }

  BlastResult BuildResult() {
    BlastResult r;
    r.bytes_transferred = bytes_received_;
    r.messages_sent = messages_completed_;
    SimDuration elapsed = end_time_ - start_time_;
    r.elapsed_seconds = ToSeconds(elapsed);
    r.throughput_mbps = ThroughputMbps(bytes_received_, elapsed);
    r.time_per_message_us =
        ToMicroseconds(elapsed) / static_cast<double>(config_.message_count);

    // CPU usage over the measurement interval (busy time sampled at the
    // start of the first transfer and at delivery of the last byte).
    r.receiver_cpu_percent =
        100.0 * ToSeconds(receiver_busy_end_ - receiver_busy_start_) /
        ToSeconds(elapsed);
    r.sender_cpu_percent =
        100.0 * ToSeconds(sender_busy_end_ - sender_busy_start_) /
        ToSeconds(elapsed);

    r.client_stats = client_->stats();
    r.server_stats = server_->stats();
    r.direct_transfers = r.client_stats.direct_transfers;
    r.indirect_transfers = r.client_stats.indirect_transfers;
    r.mode_switches = r.client_stats.mode_switches;
    r.direct_ratio = r.client_stats.DirectTransferRatio();
    r.adverts_discarded = r.client_stats.adverts_discarded;
    r.data_verified = config_.verify_data;
    if (CaptureMetrics(config_)) r.metrics_json = sim_.MetricsJson();
    if (CaptureTimeline(config_)) r.timeline_json = sim_.TimelineJson();
    return r;
  }

  BlastConfig config_;
  Simulation sim_;
  Socket* client_ = nullptr;
  Socket* server_ = nullptr;

  std::vector<std::uint64_t> sizes_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t max_size_ = 0;
  std::vector<std::uint8_t> send_slab_;
  std::vector<std::uint8_t> recv_slab_;
  std::vector<std::uint32_t> free_send_buffers_;
  std::unordered_map<std::uint64_t, std::uint32_t> send_buffer_of_;
  std::unordered_map<std::uint64_t, std::uint32_t> recv_buffer_of_;

  std::uint64_t next_message_ = 0;
  std::uint64_t messages_completed_ = 0;
  std::uint64_t burst_remaining_ = 0;
  bool burst_resume_scheduled_ = false;
  std::uint64_t send_stream_offset_ = 0;
  std::uint64_t recv_stream_offset_ = 0;
  std::uint64_t bytes_received_ = 0;
  SimTime start_time_ = 0;
  SimTime end_time_ = 0;
  SimDuration sender_busy_start_ = 0;
  SimDuration sender_busy_end_ = 0;
  SimDuration receiver_busy_start_ = 0;
  SimDuration receiver_busy_end_ = 0;
};

Metric Summarize(const std::vector<double>& samples) {
  RunningStats s = exs::Summarize(samples);
  return Metric{s.Mean(), s.ConfidenceHalfWidth95(), s.Min(), s.Max()};
}

}  // namespace

BlastResult RunBlast(const BlastConfig& config) {
  BlastRun run(config);
  BlastResult result = run.Run();
  WriteOutput(config.metrics_json_path, result.metrics_json);
  WriteOutput(config.timeline_json_path, result.timeline_json);
  return result;
}

BlastSummary RunRepeated(const BlastConfig& config, int runs) {
  EXS_CHECK(runs > 0);
  BlastSummary summary;
  std::vector<double> tput, tpm, rcpu, scpu, ratio, switches;
  for (int i = 0; i < runs; ++i) {
    BlastConfig c = config;
    c.seed = config.seed + static_cast<std::uint64_t>(i) * 7919;
    if (i > 0) {
      // Only the first (representative) run captures and writes exporter
      // output; repeats would overwrite the files and slow the sweep.
      c.capture_metrics = false;
      c.capture_timeline = false;
      c.metrics_json_path.clear();
      c.timeline_json_path.clear();
    }
    BlastResult r = RunBlast(c);
    tput.push_back(r.throughput_mbps);
    tpm.push_back(r.time_per_message_us);
    rcpu.push_back(r.receiver_cpu_percent);
    scpu.push_back(r.sender_cpu_percent);
    ratio.push_back(r.direct_ratio);
    switches.push_back(static_cast<double>(r.mode_switches));
    summary.runs.push_back(std::move(r));
  }
  summary.throughput_mbps = Summarize(tput);
  summary.time_per_message_us = Summarize(tpm);
  summary.receiver_cpu_percent = Summarize(rcpu);
  summary.sender_cpu_percent = Summarize(scpu);
  summary.direct_ratio = Summarize(ratio);
  summary.mode_switches = Summarize(switches);
  return summary;
}

}  // namespace exs::blast
