// The paper's measurement workload (§IV-B): a "blast" tool that sends
// messages as fast as possible from client to server — a model of a large
// file transfer — and reports throughput (Eq. 1), time per message, CPU
// usage on each side, and the library's direct/indirect transfer counters.
//
// The client keeps `outstanding_sends` requests in flight, reposting as
// completions arrive; the server keeps `outstanding_recvs` receives posted.
// Message sizes are either fixed or drawn from a truncated exponential
// distribution, exactly the two shapes the evaluation sweeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "exs/exs.hpp"

namespace exs::blast {

struct BlastConfig {
  simnet::HardwareProfile profile = simnet::HardwareProfile::FdrInfiniBand();
  SocketType socket_type = SocketType::kStream;
  StreamOptions stream;

  std::uint32_t outstanding_sends = 1;
  std::uint32_t outstanding_recvs = 1;
  std::uint64_t message_count = 1000;

  /// Fixed message size; 0 selects the exponential distribution below.
  std::uint64_t fixed_message_bytes = 0;
  double exponential_mean_bytes = 256.0 * static_cast<double>(kKiB);
  std::uint64_t max_message_bytes = 4 * kMiB;

  /// Bursty traffic (paper §VI: "burstiness during a connection"): send
  /// `burst_messages` back to back, then idle for `burst_idle` before the
  /// next burst.  0 disables bursting (continuous blast).
  std::uint64_t burst_messages = 0;
  SimDuration burst_idle = 0;

  /// Mid-run workload shift (paper §VI: "dynamically changing send and
  /// receive message sizes"): from message index `shift_at_message`
  /// onwards, draw sizes from an exponential with this mean instead.
  /// 0 disables the shift.
  double shifted_mean_bytes = 0.0;
  std::uint64_t shift_at_message = 0;

  /// Size of each receive buffer the server posts.  The paper's tool posts
  /// buffers big enough for the largest message.
  std::uint64_t recv_buffer_bytes = 4 * kMiB;

  std::uint64_t seed = 1;

  /// Move and verify real payload bytes (slower; tests use it).
  bool carry_payload = false;
  bool verify_data = false;

  /// Delay before the client's first send.  The server posts its receives
  /// at time zero, so any positive head start lets the initial ADVERTs
  /// reach the client first — the connection then genuinely starts in a
  /// direct phase, as the paper observes.
  SimDuration client_start_delay = Microseconds(50);

  // Observability capture (see docs/OBSERVABILITY.md).  The JSON snapshots
  // land in BlastResult::metrics_json / timeline_json; the paths below
  // additionally write them to disk ("-" writes to stdout).  Setting a
  // path implies the corresponding capture flag.
  bool capture_metrics = false;
  bool capture_timeline = false;
  std::string metrics_json_path;
  std::string timeline_json_path;
  /// Per-log trace-event cap while capturing a timeline (0 = unbounded).
  std::uint64_t trace_event_capacity = 1'000'000;
};

struct BlastResult {
  double throughput_mbps = 0.0;       ///< Eq. 1, user bytes over elapsed
  double elapsed_seconds = 0.0;
  double time_per_message_us = 0.0;
  double receiver_cpu_percent = 0.0;
  double sender_cpu_percent = 0.0;
  std::uint64_t bytes_transferred = 0;
  std::uint64_t messages_sent = 0;

  // Client-side (sender) protocol counters.
  std::uint64_t direct_transfers = 0;
  std::uint64_t indirect_transfers = 0;
  std::uint64_t mode_switches = 0;
  double direct_ratio = 0.0;
  std::uint64_t adverts_discarded = 0;

  // Full per-socket statistics for deeper inspection.
  StreamStats client_stats;
  StreamStats server_stats;

  bool data_verified = false;  ///< true when verify_data ran and passed

  /// Captured exporter output (empty unless the config asked for it).
  std::string metrics_json;
  std::string timeline_json;
};

/// Run one blast with the given configuration.
BlastResult RunBlast(const BlastConfig& config);

/// Mean and 95% confidence half-width over repeated runs with different
/// seeds (the paper averages 10 runs per point).
struct Metric {
  double mean = 0.0;
  double ci95 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct BlastSummary {
  Metric throughput_mbps;
  Metric time_per_message_us;
  Metric receiver_cpu_percent;
  Metric sender_cpu_percent;
  Metric direct_ratio;
  Metric mode_switches;
  std::vector<BlastResult> runs;
};

BlastSummary RunRepeated(const BlastConfig& config, int runs);

}  // namespace exs::blast
