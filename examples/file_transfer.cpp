// Bulk file transfer over distance — the GridFTP-style scenario that
// motivates the paper's interest in RDMA over wide-area paths (§I).
//
// Moves a 64 MiB "file" between two hosts connected by 10 GbE RoCE through
// a 48 ms round-trip delay emulator, once with each protocol mode, and
// reports the transfer time.  With a long round trip, waiting for each
// ADVERT costs dearly when few receives are outstanding; buffered
// (indirect) service hides that latency, and the dynamic algorithm finds
// the better mode on its own.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"

namespace {

using namespace exs;  // NOLINT

constexpr std::uint64_t kFileBytes = 64 * kMiB;
constexpr std::uint64_t kChunk = 1 * kMiB;  // application read/write size
// The reader models a legacy application with little receive pipelining
// (two posted receives); the writer streams eagerly.  Over a long round
// trip this is precisely where waiting for ADVERTs hurts (§I).
constexpr std::uint32_t kReaderWindow = 2;
constexpr std::uint32_t kWriterWindow = 8;

const std::vector<std::uint8_t>& FileContents() {
  static const std::vector<std::uint8_t> file = [] {
    std::vector<std::uint8_t> f(kFileBytes);
    FillPattern(f.data(), f.size(), 0, 99);
    return f;
  }();
  return file;
}

double TransferSeconds(ProtocolMode mode) {
  StreamOptions opts;
  opts.mode = mode;
  opts.intermediate_buffer_bytes = 16 * kMiB;
  Simulation sim(simnet::HardwareProfile::RoCE10GWithDelay(Milliseconds(24)),
                 /*seed=*/7, /*carry_payload=*/true);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream, opts);

  const std::vector<std::uint8_t>& file = FileContents();
  std::vector<std::uint8_t> dest(kFileBytes);
  client->RegisterMemory(const_cast<std::uint8_t*>(file.data()), file.size());
  server->RegisterMemory(dest.data(), dest.size());

  std::uint64_t write_offset = 0;   // bytes handed to Send()
  std::uint64_t recv_claimed = 0;   // bytes covered by posted receives
  std::uint64_t read_offset = 0;    // bytes completed at the reader
  SimTime done_at = 0;

  auto post_recv = [&] {
    if (recv_claimed >= kFileBytes) return;
    std::uint64_t n = std::min(kChunk, kFileBytes - recv_claimed);
    server->Recv(dest.data() + recv_claimed, n, RecvFlags{.waitall = true});
    recv_claimed += n;
  };
  auto post_send = [&] {
    if (write_offset >= kFileBytes) return;
    std::uint64_t n = std::min(kChunk, kFileBytes - write_offset);
    client->Send(file.data() + write_offset, n);
    write_offset += n;
  };

  // Reader: keep a window of receives posted until the file is complete.
  server->events().SetHandler([&](const Event& ev) {
    read_offset += ev.bytes;
    if (read_offset >= kFileBytes) {
      done_at = sim.Now();
      return;
    }
    post_recv();
  });
  // Writer: stream the next chunk whenever one completes.
  client->events().SetHandler([&](const Event&) { post_send(); });

  // Prime both windows and go.
  for (std::uint32_t i = 0; i < kReaderWindow; ++i) post_recv();
  SimTime start = sim.Now();
  for (std::uint32_t i = 0; i < kWriterWindow; ++i) post_send();
  sim.Run();

  if (VerifyPattern(dest.data(), dest.size(), 0, 99) != dest.size()) {
    std::fprintf(stderr, "file corrupted in transit!\n");
    std::exit(1);
  }
  std::printf(
      "  %-13s  %6.2f s   (%4.0f Mb/s)   direct %llu / indirect %llu\n",
      ToString(mode), ToSeconds(done_at - start),
      ThroughputMbps(kFileBytes, done_at - start),
      static_cast<unsigned long long>(client->stats().direct_transfers),
      static_cast<unsigned long long>(client->stats().indirect_transfers));
  return ToSeconds(done_at - start);
}

}  // namespace

int main() {
  std::printf("transferring a %llu MiB file over 10 GbE with a 48 ms RTT\n",
              static_cast<unsigned long long>(kFileBytes / kMiB));
  std::printf("(reader keeps %u receives of %llu MiB posted; writer keeps %u "
              "sends in flight)\n\n",
              kReaderWindow, static_cast<unsigned long long>(kChunk / kMiB),
              kWriterWindow);
  double direct = TransferSeconds(ProtocolMode::kDirectOnly);
  double indirect = TransferSeconds(ProtocolMode::kIndirectOnly);
  double dynamic = TransferSeconds(ProtocolMode::kDynamic);
  std::printf(
      "\nbuffering hides the ADVERT round trip: indirect is %.1fx faster "
      "than direct here,\nand the dynamic protocol reaches %.0f%% of the "
      "better mode without being told which.\n",
      direct / indirect, 100.0 * std::min(direct, indirect) / dynamic);
  return 0;
}
