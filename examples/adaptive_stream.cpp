// Watching the dynamic algorithm adapt.
//
// Drives one stream connection through three workload regimes and prints a
// timeline of the sender's transfer decisions:
//
//   phase A — receiver ahead: receives are posted well before sends, so
//             every transfer is direct (zero-copy into user memory);
//   phase B — sender ahead: sends race ahead of the receiver, the first
//             transfer with no usable ADVERT flips the connection into an
//             indirect phase, and data flows through the hidden buffer;
//   phase C — after an idle gap the receiver drains, resynchronises, and
//             the connection returns to direct service.
//
// This is Fig. 2/3/4/5 of the paper in motion.
#include <cstdio>
#include <vector>

#include "exs/exs.hpp"

namespace {

using namespace exs;  // NOLINT

void Report(const char* phase, Socket* client, Socket* server,
            Simulation& sim) {
  const StreamStats& tx = client->stats();
  std::printf(
      "%-46s t=%7.1f us  phase P_s=%llu/P_r=%llu  direct=%llu indirect=%llu "
      "switches=%llu\n",
      phase, ToMicroseconds(sim.Now()),
      static_cast<unsigned long long>(client->stream_tx()->phase()),
      static_cast<unsigned long long>(server->stream_rx()->phase()),
      static_cast<unsigned long long>(tx.direct_transfers),
      static_cast<unsigned long long>(tx.indirect_transfers),
      static_cast<unsigned long long>(tx.mode_switches));
}

}  // namespace

int main() {
  Simulation sim(simnet::HardwareProfile::FdrInfiniBand(), /*seed=*/4);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);
  client->EnableTracing();
  server->EnableTracing();

  constexpr std::uint64_t kMsg = 64 * kKiB;
  constexpr int kPerPhase = 6;
  std::vector<std::uint8_t> out(kMsg * kPerPhase * 3), in(out.size());
  client->RegisterMemory(out.data(), out.size());
  server->RegisterMemory(in.data(), in.size());
  std::uint64_t sent = 0, recvd = 0;

  std::printf("event log (P_s/P_r are the paper's sender/receiver phase "
              "numbers; even = direct, odd = indirect)\n\n");
  Report("connection established", client, server, sim);

  // Phase A: receiver ahead — post all receives first, then send.
  for (int i = 0; i < kPerPhase; ++i) {
    server->Recv(in.data() + recvd, kMsg, RecvFlags{.waitall = true});
    recvd += kMsg;
  }
  sim.RunFor(Microseconds(20));  // ADVERTs reach the sender
  for (int i = 0; i < kPerPhase; ++i) {
    client->Send(out.data() + sent, kMsg);
    sent += kMsg;
  }
  sim.Run();
  Report("phase A done (receiver ahead -> all direct)", client, server, sim);

  // Phase B: sender ahead — blast sends with no receives posted.
  for (int i = 0; i < kPerPhase; ++i) {
    client->Send(out.data() + sent, kMsg);
    sent += kMsg;
  }
  sim.RunFor(Microseconds(200));
  Report("phase B sends issued (no receives -> indirect)", client, server,
         sim);
  for (int i = 0; i < kPerPhase; ++i) {
    server->Recv(in.data() + recvd, kMsg, RecvFlags{.waitall = true});
    recvd += kMsg;
  }
  sim.Run();
  Report("phase B drained from the hidden buffer", client, server, sim);

  // Phase C: idle gap, then receiver-ahead traffic again.  The receiver
  // resynchronised when its buffer emptied, so service is direct again.
  sim.RunFor(Milliseconds(1));
  for (int i = 0; i < kPerPhase; ++i) {
    server->Recv(in.data() + recvd, kMsg, RecvFlags{.waitall = true});
    recvd += kMsg;
  }
  sim.RunFor(Microseconds(20));
  for (int i = 0; i < kPerPhase; ++i) {
    client->Send(out.data() + sent, kMsg);
    sent += kMsg;
  }
  sim.Run();
  Report("phase C done (resynchronised -> direct again)", client, server,
         sim);

  std::printf(
      "\n%llu bytes delivered in order; ADVERTs discarded as stale: %llu\n",
      static_cast<unsigned long long>(server->stats().bytes_received),
      static_cast<unsigned long long>(client->stats().adverts_discarded));

  // The full protocol trace is available for inspection — and the lemmas
  // the paper proves about it can be machine-checked.
  auto lemmas = ValidateConnectionTraces(client->tx_trace().events(),
                                         server->rx_trace().events());
  std::printf("lemma check over %zu sender + %zu receiver trace events: %s\n",
              client->tx_trace().events().size(),
              server->rx_trace().events().size(),
              lemmas.ok() ? "all passed" : lemmas.Summary().c_str());
  std::printf("\nfirst sender trace records:\n");
  int shown = 0;
  for (const auto& ev : client->tx_trace().events()) {
    if (++shown > 6) break;
    std::printf("  t=%8.2fus %-16s seq=%-7llu P_s=%llu\n",
                ToMicroseconds(ev.time), ToString(ev.type),
                static_cast<unsigned long long>(ev.seq),
                static_cast<unsigned long long>(ev.phase));
  }
  return 0;
}
