// Striped wide-area transfer — the GridFTP pattern the paper's distance
// work targets (§I cites an RDMA driver for GridFTP).
//
// One logical 128 MiB transfer is striped across several parallel stream
// connections, each established through the listen/connect/accept
// handshake.  Over a long round trip a single connection is limited by its
// flow-control window (intermediate buffer for the indirect path); stripes
// multiply the aggregate window, so total throughput scales until the link
// saturates — the standard wide-area trick, built here entirely on the
// public API.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/pattern.hpp"
#include "exs/exs.hpp"

namespace {

using namespace exs;  // NOLINT

constexpr std::uint64_t kTotalBytes = 128 * kMiB;
constexpr std::uint64_t kChunk = 1 * kMiB;

/// Transfer kTotalBytes over `stripes` connections; returns seconds.
double StripedSeconds(int stripes) {
  StreamOptions opts;
  opts.intermediate_buffer_bytes = 4 * kMiB;  // per-connection window
  Simulation sim(simnet::HardwareProfile::RoCE10GWithDelay(Milliseconds(24)),
                 /*seed=*/11, /*carry_payload=*/false);

  struct Stripe {
    Socket* tx = nullptr;
    Socket* rx = nullptr;
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t goal = 0;
  };
  std::vector<Stripe> lanes(stripes);
  // Static stripe decomposition of the file.
  for (int i = 0; i < stripes; ++i) {
    lanes[i].goal = kTotalBytes / stripes;
  }
  lanes.back().goal += kTotalBytes % stripes;

  // Source and sink staging buffers (one chunk in flight per direction per
  // stripe keeps the example simple; the protocol pipelines underneath).
  std::vector<std::vector<std::uint8_t>> src(stripes), dst(stripes);
  for (int i = 0; i < stripes; ++i) {
    src[i].resize(kChunk);
    dst[i].resize(kChunk);
  }

  Listener* listener = sim.Listen(1, 7000, SocketType::kStream, opts);
  int accepted = 0;
  SimTime finished_at = 0;
  std::uint64_t grand_total = 0;

  listener->SetAcceptHandler([&](Socket* s) {
    Stripe& lane = lanes[accepted];
    lane.rx = s;
    int index = accepted++;
    s->events().SetHandler([&, index](const Event& ev) {
      Stripe& me = lanes[index];
      me.received += ev.bytes;
      grand_total += ev.bytes;
      if (grand_total >= kTotalBytes) {
        finished_at = sim.Now();
        return;
      }
      if (me.received < me.goal) {
        std::uint64_t n = std::min(kChunk, me.goal - me.received);
        me.rx->Recv(dst[index].data(), n, RecvFlags{.waitall = true});
      }
    });
    std::uint64_t n = std::min(lane.goal, kChunk);
    s->Recv(dst[index].data(), n, RecvFlags{.waitall = true});
  });

  for (int i = 0; i < stripes; ++i) {
    sim.Connect(0, 7000, SocketType::kStream, opts, [&, i](Socket* s) {
      Stripe& lane = lanes[i];
      lane.tx = s;
      s->events().SetHandler([&, i](const Event&) {
        Stripe& me = lanes[i];
        if (me.sent < me.goal) {
          std::uint64_t n = std::min(kChunk, me.goal - me.sent);
          me.tx->Send(src[i].data(), n);
          me.sent += n;
        }
      });
      // Prime four chunks per stripe.
      for (int k = 0; k < 4 && lane.sent < lane.goal; ++k) {
        std::uint64_t n = std::min(kChunk, lane.goal - lane.sent);
        s->Send(src[i].data(), n);
        lane.sent += n;
      }
    });
  }

  SimTime start = sim.Now();
  sim.Run();
  return ToSeconds(finished_at - start);
}

}  // namespace

int main() {
  std::printf("striping a %llu MiB transfer over 10 GbE with a 48 ms RTT\n"
              "(4 MiB window per connection; connections made via "
              "listen/connect/accept)\n\n",
              static_cast<unsigned long long>(kTotalBytes / kMiB));
  double base = 0;
  for (int stripes : {1, 2, 4, 8}) {
    double secs = StripedSeconds(stripes);
    if (stripes == 1) base = secs;
    std::printf("  %d stripe%s  %6.2f s   %7.0f Mb/s   speedup %.2fx\n",
                stripes, stripes == 1 ? ": " : "s:", secs,
                ThroughputMbps(kTotalBytes, Seconds(secs)), base / secs);
  }
  std::printf("\neach stripe is window-limited by its buffer over the long "
              "round trip;\nparallel connections multiply the aggregate "
              "window — the GridFTP recipe.\n");
  return 0;
}
