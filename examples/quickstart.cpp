// Quickstart: the smallest complete EXS program.
//
// Creates a simulated FDR InfiniBand testbed with a connected stream
// socket pair, sends a message, receives it, and prints the completion
// events and the transfer statistics.  Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "exs/exs.hpp"

int main() {
  using namespace exs;

  // A Simulation owns the two-node fabric: the clock, the link, one CPU
  // and one RDMA device per node.
  Simulation sim(simnet::HardwareProfile::FdrInfiniBand());

  // Stream sockets give TCP-like byte-stream semantics over RDMA.
  auto [client, server] = sim.CreateConnectedPair(SocketType::kStream);

  const std::string message = "hello, stream semantics over RDMA";
  std::vector<std::uint8_t> recv_buffer(256);

  // Completions arrive asynchronously on each socket's event queue.
  server->events().SetHandler([&](const Event& ev) {
    if (ev.type == EventType::kRecvComplete) {
      std::cout << "[server] received " << ev.bytes << " bytes: \""
                << std::string(reinterpret_cast<char*>(recv_buffer.data()),
                               ev.bytes)
                << "\" at t=" << ToMicroseconds(sim.Now()) << " us\n";
    }
  });
  client->events().SetHandler([&](const Event& ev) {
    if (ev.type == EventType::kSendComplete) {
      std::cout << "[client] send of " << ev.bytes << " bytes completed at t="
                << ToMicroseconds(sim.Now()) << " us\n";
    }
  });

  // Both calls are asynchronous and return request ids immediately; the
  // simulation only advances inside Run()/RunFor().  Posting the receive
  // first and letting its ADVERT reach the sender puts the transfer on the
  // zero-copy direct path.
  server->Recv(recv_buffer.data(), recv_buffer.size());
  sim.RunFor(Microseconds(10));
  client->Send(message.data(), message.size());
  sim.Run();

  const StreamStats& stats = client->stats();
  std::cout << "\ntransfers: " << stats.direct_transfers << " direct, "
            << stats.indirect_transfers << " indirect ("
            << (stats.indirect_transfers > 0
                    ? "the send raced ahead of the receive's ADVERT"
                    : "the ADVERT was ready in time")
            << ")\n";
  return 0;
}
