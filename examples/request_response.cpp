// A request/response (RPC-style) service on SOCK_SEQPACKET sockets.
//
// Message-oriented sockets preserve boundaries, which is exactly what an
// RPC framing wants: one Recv yields one request, one Send returns one
// response — no length-prefix plumbing.  The client issues a pipeline of
// requests with varying payloads and reports the latency distribution.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "exs/exs.hpp"

namespace {

using namespace exs;  // NOLINT

constexpr int kRequests = 2000;
constexpr std::uint64_t kMaxPayload = 8 * kKiB;

struct RequestHeader {
  std::uint64_t id;
  std::uint64_t payload_bytes;
};

}  // namespace

int main() {
  Simulation sim(simnet::HardwareProfile::FdrInfiniBand(), /*seed=*/11);
  auto [client, server] = sim.CreateConnectedPair(SocketType::kSeqPacket);

  // Server state: echo-style handler that "processes" each request and
  // responds with the same id.
  std::vector<std::uint8_t> srv_in(sizeof(RequestHeader) + kMaxPayload);
  std::vector<std::uint8_t> srv_out(sizeof(RequestHeader) + kMaxPayload);
  std::uint64_t served = 0;
  server->events().SetHandler([&, server = server](const Event& ev) {
    if (ev.type != EventType::kRecvComplete) return;  // response send done
    RequestHeader hdr;
    std::memcpy(&hdr, srv_in.data(), sizeof(hdr));
    // Response: header + a quarter of the request payload.
    RequestHeader resp{hdr.id, hdr.payload_bytes / 4};
    std::memcpy(srv_out.data(), &resp, sizeof(resp));
    server->Send(srv_out.data(), sizeof(resp) + resp.payload_bytes);
    server->Recv(srv_in.data(), srv_in.size());
    ++served;
  });

  // Client state: a window of in-flight requests; latency per id.
  std::vector<std::uint8_t> cli_out(sizeof(RequestHeader) + kMaxPayload);
  std::vector<std::uint8_t> cli_in(sizeof(RequestHeader) + kMaxPayload);
  std::vector<SimTime> issued(kRequests);
  std::vector<double> latencies_us;
  latencies_us.reserve(kRequests);
  Rng rng(5);
  std::uint64_t next_id = 0;

  auto issue = [&] {
    if (next_id >= kRequests) return;
    RequestHeader hdr{next_id, rng.NextInRange(0, kMaxPayload)};
    std::memcpy(cli_out.data(), &hdr, sizeof(hdr));
    issued[next_id] = sim.Now();
    client->Send(cli_out.data(), sizeof(hdr) + hdr.payload_bytes);
    ++next_id;
  };

  client->events().SetHandler([&, client = client](const Event& ev) {
    if (ev.type != EventType::kRecvComplete) return;
    RequestHeader hdr;
    std::memcpy(&hdr, cli_in.data(), sizeof(hdr));
    latencies_us.push_back(ToMicroseconds(sim.Now() - issued[hdr.id]));
    client->Recv(cli_in.data(), cli_in.size());
    issue();
  });

  // Prime the pipeline: the serial request loop here keeps one request in
  // flight (SEQPACKET matches one ADVERT per message).
  server->Recv(srv_in.data(), srv_in.size());
  client->Recv(cli_in.data(), cli_in.size());
  sim.RunFor(Microseconds(20));
  issue();
  sim.Run();

  std::sort(latencies_us.begin(), latencies_us.end());
  auto pct = [&](double p) {
    return latencies_us[static_cast<std::size_t>(
        p * (latencies_us.size() - 1))];
  };
  std::printf("%d requests served (payloads 0..%llu KiB)\n",
              kRequests, static_cast<unsigned long long>(kMaxPayload / kKiB));
  std::printf("request latency: p50 %.1f us  p90 %.1f us  p99 %.1f us  max "
              "%.1f us\n",
              pct(0.50), pct(0.90), pct(0.99), latencies_us.back());
  std::printf("every message moved zero-copy: %llu direct transfers, %llu "
              "indirect\n",
              static_cast<unsigned long long>(
                  client->stats().direct_transfers +
                  server->stats().direct_transfers),
              static_cast<unsigned long long>(
                  client->stats().indirect_transfers));
  return 0;
}
